package sdl

import (
	"fmt"
	"strconv"

	"repro/internal/schema"
	"repro/internal/value"
)

// Parse parses SDL source into a frozen schema. The parser is two-pass:
// declarations are collected into an AST first, then the schema is built
// with classes before generalizations before associations, so forward
// references between declarations work in either direction.
func Parse(src string) (*schema.Schema, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	ast, err := p.parseSchema()
	if err != nil {
		return nil, err
	}
	return build(ast)
}

// MustParse is Parse for known-good sources; it panics on error.
func MustParse(src string) *schema.Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// ---- AST ----

type schemaAST struct {
	name    string
	version int
	classes []*classAST
	assocs  []*assocAST
}

type classAST struct {
	name        string
	specializes string
	covering    bool
	members     []*memberAST
	procs       []string
	line        int
}

type memberAST struct {
	name     string
	kindName string // "" for structured sub-objects
	card     schema.Cardinality
	members  []*memberAST
	procs    []string
	line     int
}

type assocAST struct {
	name        string
	specializes string
	covering    bool
	acyclic     bool
	roles       []roleAST
	members     []*memberAST
	procs       []string
	line        int
}

type roleAST struct {
	name      string
	className string
	card      schema.Cardinality
	line      int
}

// ---- Parser ----

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %v, found %v %q", kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return p.errorf("expected %q, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: %d:%d: %s", ErrSyntax, p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) parseSchema() (*schemaAST, error) {
	if err := p.expectKeyword("schema"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	ast := &schemaAST{name: name.text, version: 1}
	if p.atKeyword("version") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		// The token is all digits, so Atoi only fails on overflow — and
		// then returns the clamped maximum, which would pass the < 1
		// check below and silently accept a nonsense version.
		ver, err := strconv.Atoi(v.text)
		if err != nil {
			return nil, p.errorf("schema version %q out of range", v.text)
		}
		ast.version = ver
		if ast.version < 1 {
			return nil, p.errorf("schema version must be positive")
		}
	}
	for p.tok.kind != tokEOF {
		switch {
		case p.atKeyword("class"):
			c, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			ast.classes = append(ast.classes, c)
		case p.atKeyword("assoc"):
			a, err := p.parseAssoc()
			if err != nil {
				return nil, err
			}
			ast.assocs = append(ast.assocs, a)
		default:
			return nil, p.errorf("expected 'class' or 'assoc', found %q", p.tok.text)
		}
	}
	return ast, nil
}

func (p *parser) parseClass() (*classAST, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume 'class'
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	c := &classAST{name: name.text, line: line}
	if p.atKeyword("specializes") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sup, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		c.specializes = sup.text
	}
	if p.atKeyword("covering") {
		c.covering = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tokLBrace {
		members, procs, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		c.members, c.procs = members, procs
	}
	return c, nil
}

func (p *parser) parseAssoc() (*assocAST, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume 'assoc'
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	a := &assocAST{name: name.text, line: line}
	for {
		switch {
		case p.atKeyword("specializes"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			sup, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			a.specializes = sup.text
			continue
		case p.atKeyword("covering"):
			a.covering = true
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		case p.atKeyword("acyclic"):
			a.acyclic = true
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for {
		r, err := p.parseRole()
		if err != nil {
			return nil, err
		}
		a.roles = append(a.roles, r)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.tok.kind == tokLBrace {
		members, procs, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		a.members, a.procs = members, procs
	}
	return a, nil
}

func (p *parser) parseRole() (roleAST, error) {
	line := p.tok.line
	name, err := p.expect(tokIdent)
	if err != nil {
		return roleAST{}, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return roleAST{}, err
	}
	cls, err := p.expect(tokIdent)
	if err != nil {
		return roleAST{}, err
	}
	card, err := p.parseCardinality()
	if err != nil {
		return roleAST{}, err
	}
	return roleAST{name: name.text, className: cls.text, card: card, line: line}, nil
}

// parseBody parses '{' member* '}' shared by classes, associations, and
// structured sub-objects.
func (p *parser) parseBody() ([]*memberAST, []string, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, nil, err
	}
	var members []*memberAST
	var procs []string
	for p.tok.kind != tokRBrace {
		if p.atKeyword("proc") {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, nil, err
			}
			procs = append(procs, name.text)
			continue
		}
		m, err := p.parseMember()
		if err != nil {
			return nil, nil, err
		}
		members = append(members, m)
	}
	return members, procs, p.advance() // consume '}'
}

func (p *parser) parseMember() (*memberAST, error) {
	line := p.tok.line
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	m := &memberAST{name: name.text, line: line}
	if p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return nil, err
		}
		kind, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		m.kindName = kind.text
	}
	m.card, err = p.parseCardinality()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokLBrace {
		// Value members may carry a body too — it can only hold attached
		// procedures; child declarations are rejected by schema validation
		// (a value class cannot have sub-classes).
		members, procs, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		m.members, m.procs = members, procs
	}
	return m, nil
}

func (p *parser) parseCardinality() (schema.Cardinality, error) {
	min, err := p.expect(tokInt)
	if err != nil {
		return schema.Cardinality{}, err
	}
	if _, err := p.expect(tokDotDot); err != nil {
		return schema.Cardinality{}, err
	}
	lo, _ := strconv.Atoi(min.text)
	if p.tok.kind == tokStar {
		if err := p.advance(); err != nil {
			return schema.Cardinality{}, err
		}
		return schema.Card(lo, schema.Unbounded), nil
	}
	max, err := p.expect(tokInt)
	if err != nil {
		return schema.Cardinality{}, err
	}
	hi, _ := strconv.Atoi(max.text)
	c := schema.Card(lo, hi)
	if err := c.Check(); err != nil {
		return schema.Cardinality{}, p.errorf("%v", err)
	}
	return c, nil
}

// ---- Builder ----

func build(ast *schemaAST) (*schema.Schema, error) {
	s := schema.New(ast.name)
	// Pass 1: classes with their containment trees.
	for _, c := range ast.classes {
		cls, err := s.AddClass(c.name)
		if err != nil {
			return nil, fmt.Errorf("sdl: line %d: %w", c.line, err)
		}
		if c.covering {
			if err := cls.SetCovering(true); err != nil {
				return nil, err
			}
		}
		for _, proc := range c.procs {
			if err := cls.AttachProcedure(proc); err != nil {
				return nil, fmt.Errorf("sdl: line %d: %w", c.line, err)
			}
		}
		if err := buildMembers(cls, c.members); err != nil {
			return nil, err
		}
	}
	// Pass 2: class generalizations.
	for _, c := range ast.classes {
		if c.specializes == "" {
			continue
		}
		cls := s.MustClass(c.name)
		sup, err := s.Class(c.specializes)
		if err != nil {
			return nil, fmt.Errorf("sdl: line %d: %w", c.line, err)
		}
		if err := cls.Specialize(sup); err != nil {
			return nil, fmt.Errorf("sdl: line %d: %w", c.line, err)
		}
	}
	// Pass 3: associations with roles and attributes.
	for _, a := range ast.assocs {
		assoc, err := s.AddAssociation(a.name)
		if err != nil {
			return nil, fmt.Errorf("sdl: line %d: %w", a.line, err)
		}
		if a.covering {
			if err := assoc.SetCovering(true); err != nil {
				return nil, err
			}
		}
		if a.acyclic {
			if err := assoc.SetAcyclic(true); err != nil {
				return nil, err
			}
		}
		for _, proc := range a.procs {
			if err := assoc.AttachProcedure(proc); err != nil {
				return nil, fmt.Errorf("sdl: line %d: %w", a.line, err)
			}
		}
		for _, r := range a.roles {
			cls, err := s.Class(r.className)
			if err != nil {
				return nil, fmt.Errorf("sdl: line %d: %w", r.line, err)
			}
			if _, err := assoc.AddRole(r.name, cls, r.card); err != nil {
				return nil, fmt.Errorf("sdl: line %d: %w", r.line, err)
			}
		}
		for _, m := range a.members {
			if err := buildAssocMember(assoc, m); err != nil {
				return nil, err
			}
		}
	}
	// Pass 4: association generalizations.
	for _, a := range ast.assocs {
		if a.specializes == "" {
			continue
		}
		assoc := s.MustAssociation(a.name)
		sup, err := s.Association(a.specializes)
		if err != nil {
			return nil, fmt.Errorf("sdl: line %d: %w", a.line, err)
		}
		if err := assoc.Specialize(sup); err != nil {
			return nil, fmt.Errorf("sdl: line %d: %w", a.line, err)
		}
	}
	if err := s.Freeze(); err != nil {
		return nil, fmt.Errorf("sdl: %w", err)
	}
	// The version directive is honoured by evolving the schema version-1
	// clone forward. Schemas persisted by the database re-parse with their
	// original version number.
	for s.Version() < ast.version {
		next, err := s.Evolve()
		if err != nil {
			return nil, err
		}
		if err := next.Freeze(); err != nil {
			return nil, err
		}
		s = next
	}
	return s, nil
}

func buildMembers(cls *schema.Class, members []*memberAST) error {
	for _, m := range members {
		kind := value.KindNone
		if m.kindName != "" {
			k, ok := value.KindFromName(m.kindName)
			if !ok {
				return fmt.Errorf("%w: line %d: unknown value kind %q", ErrSyntax, m.line, m.kindName)
			}
			kind = k
		}
		child, err := cls.AddChild(m.name, m.card, kind)
		if err != nil {
			return fmt.Errorf("sdl: line %d: %w", m.line, err)
		}
		for _, proc := range m.procs {
			if err := child.AttachProcedure(proc); err != nil {
				return fmt.Errorf("sdl: line %d: %w", m.line, err)
			}
		}
		if err := buildMembers(child, m.members); err != nil {
			return err
		}
	}
	return nil
}

func buildAssocMember(assoc *schema.Association, m *memberAST) error {
	kind := value.KindNone
	if m.kindName != "" {
		k, ok := value.KindFromName(m.kindName)
		if !ok {
			return fmt.Errorf("%w: line %d: unknown value kind %q", ErrSyntax, m.line, m.kindName)
		}
		kind = k
	}
	child, err := assoc.AddChild(m.name, m.card, kind)
	if err != nil {
		return fmt.Errorf("sdl: line %d: %w", m.line, err)
	}
	for _, proc := range m.procs {
		if err := child.AttachProcedure(proc); err != nil {
			return fmt.Errorf("sdl: line %d: %w", m.line, err)
		}
	}
	return buildMembers(child, m.members)
}
