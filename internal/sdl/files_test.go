package sdl

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/schema"
)

// TestShippedSchemaFiles verifies that the SDL files under schemas/ stay in
// sync with the programmatic constructors in internal/schema.
func TestShippedSchemaFiles(t *testing.T) {
	cases := []struct {
		file  string
		build func() *schema.Schema
	}{
		{"figure2.sdl", schema.Figure2},
		{"figure3.sdl", schema.Figure3},
	}
	for _, c := range cases {
		path := filepath.Join("..", "..", "schemas", c.file)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		want := Render(c.build())
		if string(raw) != want {
			t.Errorf("%s out of sync with constructor; regenerate with sdl.Render", c.file)
		}
		if _, err := Parse(string(raw)); err != nil {
			t.Errorf("%s does not parse: %v", c.file, err)
		}
	}
}
