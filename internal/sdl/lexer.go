// Package sdl implements the SEED schema definition language: a textual
// surface form for SEED schemas, used by tools to define schemas and by the
// database to persist them (schemas are stored as SDL text and re-parsed on
// open, so the storage format is human-readable).
//
// Example (the schema of figure 3 of the paper):
//
//	schema Figure3 version 1
//
//	class Thing covering {
//	    Description: STRING 0..1
//	    Revised: DATE 1..1
//	}
//	class Data specializes Thing {
//	    Text 0..16 {
//	        Body 1..1 { Keywords: STRING 0..* }
//	        Selector: STRING 1..1
//	    }
//	}
//	class InputData specializes Data
//	class OutputData specializes Data
//	class Action specializes Thing
//
//	assoc Access covering (from: Data 1..*, by: Action 1..*)
//	assoc Read specializes Access (from: InputData 0..*, by: Action 0..*)
//	assoc Write specializes Access (from: OutputData 0..*, by: Action 0..*) {
//	    NumberOfWrites: INTEGER 1..1
//	    ErrorHandling: STRING 0..1
//	}
//	assoc Contained acyclic (contained: Action 0..1, container: Action 0..*)
//
// Comments run from '#' to end of line.
package sdl

import (
	"errors"
	"fmt"
)

// ErrSyntax reports a lexical or syntactic error with position information.
var ErrSyntax = errors.New("sdl: syntax error")

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokColon
	tokComma
	tokDotDot
	tokStar
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	case tokDotDot:
		return "'..'"
	case tokStar:
		return "'*'"
	}
	return "token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%w: %d:%d: %s", ErrSyntax, line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '\n':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			return l.scan()
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) scan() (token, error) {
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch c {
	case '{':
		l.advance()
		return token{tokLBrace, "{", line, col}, nil
	case '}':
		l.advance()
		return token{tokRBrace, "}", line, col}, nil
	case '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case ':':
		l.advance()
		return token{tokColon, ":", line, col}, nil
	case ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case '*':
		l.advance()
		return token{tokStar, "*", line, col}, nil
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.advance()
			l.advance()
			return token{tokDotDot, "..", line, col}, nil
		}
		return token{}, l.errorf(line, col, "unexpected '.'")
	}
	if isDigit(c) {
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance()
		}
		return token{tokInt, l.src[start:l.pos], line, col}, nil
	}
	if isLetter(c) {
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.advance()
		}
		return token{tokIdent, l.src[start:l.pos], line, col}, nil
	}
	return token{}, l.errorf(line, col, "unexpected character %q", c)
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
