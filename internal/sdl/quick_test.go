package sdl

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// TestRandomSchemaRoundTrip generates random schemas and checks that
// Render -> Parse -> Render is a fixed point and preserves structure.
func TestRandomSchemaRoundTrip(t *testing.T) {
	for seedVal := int64(0); seedVal < 25; seedVal++ {
		rng := rand.New(rand.NewSource(seedVal))
		s := randomSchema(t, rng)
		first := Render(s)
		re, err := Parse(first)
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v\n%s", seedVal, err, first)
		}
		second := Render(re)
		if first != second {
			t.Fatalf("seed %d: render not idempotent:\n--- first\n%s\n--- second\n%s",
				seedVal, first, second)
		}
		if len(re.ClassNames()) != len(s.ClassNames()) {
			t.Fatalf("seed %d: class count changed", seedVal)
		}
	}
}

// randomSchema builds a valid random schema: a forest of top-level classes
// with random containment trees and generalization chains, plus random
// associations with conformant specializations.
func randomSchema(t *testing.T, rng *rand.Rand) *schema.Schema {
	t.Helper()
	s := schema.New(fmt.Sprintf("Rand%d", rng.Intn(1000)))
	kinds := []value.Kind{value.KindString, value.KindInteger, value.KindReal, value.KindBoolean, value.KindDate}
	cards := []schema.Cardinality{schema.Any, schema.AtLeastOne, schema.AtMostOne, schema.ExactlyOne, schema.Card(0, 16), schema.Card(2, 7)}

	nTop := 2 + rng.Intn(5)
	tops := make([]*schema.Class, 0, nTop)
	for i := 0; i < nTop; i++ {
		c, err := s.AddClass(fmt.Sprintf("C%d", i))
		if err != nil {
			t.Fatal(err)
		}
		tops = append(tops, c)
		// Random containment tree, depth <= 3.
		var grow func(parent *schema.Class, depth, idx int)
		grow = func(parent *schema.Class, depth, idx int) {
			if depth > 3 {
				return
			}
			n := rng.Intn(3)
			for j := 0; j < n; j++ {
				kind := value.KindNone
				if rng.Intn(2) == 0 {
					kind = kinds[rng.Intn(len(kinds))]
				}
				ch, err := parent.AddChild(fmt.Sprintf("M%d_%d_%d", depth, idx, j),
					cards[rng.Intn(len(cards))], kind)
				if err != nil {
					t.Fatal(err)
				}
				if rng.Intn(3) == 0 {
					_ = ch.AttachProcedure(fmt.Sprintf("proc%d%d", depth, j))
				}
				if kind == value.KindNone {
					grow(ch, depth+1, j)
				}
			}
		}
		grow(c, 1, i)
	}
	// Generalization chains among top-level classes (acyclic by index
	// order: class i may specialize class j < i).
	for i := 1; i < nTop; i++ {
		if rng.Intn(2) == 0 {
			if err := tops[i].Specialize(tops[rng.Intn(i)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range tops {
		if len(c.Specializations()) > 0 && rng.Intn(2) == 0 {
			_ = c.SetCovering(true)
		}
	}
	// Associations.
	nAssoc := 1 + rng.Intn(4)
	var assocs []*schema.Association
	for i := 0; i < nAssoc; i++ {
		a, err := s.AddAssociation(fmt.Sprintf("A%d", i))
		if err != nil {
			t.Fatal(err)
		}
		x := tops[rng.Intn(nTop)]
		y := tops[rng.Intn(nTop)]
		if _, err := a.AddRole("x", x, cards[rng.Intn(len(cards))]); err != nil {
			t.Fatal(err)
		}
		if _, err := a.AddRole("y", y, cards[rng.Intn(len(cards))]); err != nil {
			t.Fatal(err)
		}
		if x.Root() == y.Root() && rng.Intn(3) == 0 {
			_ = a.SetAcyclic(true)
		}
		if rng.Intn(3) == 0 {
			if _, err := a.AddChild(fmt.Sprintf("Attr%d", i), schema.AtMostOne, kinds[rng.Intn(len(kinds))]); err != nil {
				t.Fatal(err)
			}
		}
		// Specialize an earlier association when the roles conform.
		for _, prev := range assocs {
			px, _ := prev.Role("x")
			py, _ := prev.Role("y")
			if x.IsA(px.Class()) && y.IsA(py.Class()) && rng.Intn(2) == 0 {
				if err := a.Specialize(prev); err == nil {
					break
				}
			}
		}
		assocs = append(assocs, a)
	}
	for _, a := range assocs {
		if len(a.Specializations()) > 0 && rng.Intn(2) == 0 {
			_ = a.SetCovering(true)
		}
	}
	if err := s.Freeze(); err != nil {
		t.Fatalf("random schema invalid: %v", err)
	}
	return s
}
