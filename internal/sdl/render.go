package sdl

//go:generate go run repro/cmd/seedschemas -dir ../../schemas

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// Render produces canonical SDL text for a schema. Render and Parse
// round-trip: Parse(Render(s)) reconstructs an equivalent schema, which is
// how the database persists schema versions.
func Render(s *schema.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s version %d\n", s.Name(), s.Version())
	for _, c := range s.TopClasses() {
		b.WriteByte('\n')
		renderClass(&b, c)
	}
	for _, a := range s.Associations() {
		b.WriteByte('\n')
		renderAssoc(&b, a)
	}
	return b.String()
}

func renderClass(b *strings.Builder, c *schema.Class) {
	fmt.Fprintf(b, "class %s", c.Name())
	if c.Super() != nil {
		fmt.Fprintf(b, " specializes %s", c.Super().Name())
	}
	if c.Covering() {
		b.WriteString(" covering")
	}
	renderBody(b, c.Children(), c.Procedures(), 0)
	b.WriteByte('\n')
}

func renderAssoc(b *strings.Builder, a *schema.Association) {
	fmt.Fprintf(b, "assoc %s", a.Name())
	if a.Super() != nil {
		fmt.Fprintf(b, " specializes %s", a.Super().Name())
	}
	if a.Covering() {
		b.WriteString(" covering")
	}
	if a.Acyclic() {
		b.WriteString(" acyclic")
	}
	b.WriteString(" (")
	for i, r := range a.Roles() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: %s %s", r.Name, r.Class().QualifiedName(), r.Card)
	}
	b.WriteString(")")
	renderBody(b, a.Children(), a.Procedures(), 0)
	b.WriteByte('\n')
}

// renderBody renders '{ members procs }' at the given indent depth, or
// nothing when the body is empty.
func renderBody(b *strings.Builder, children []*schema.Class, procs []string, depth int) {
	if len(children) == 0 && len(procs) == 0 {
		return
	}
	b.WriteString(" {\n")
	indent := strings.Repeat("    ", depth+1)
	for _, ch := range children {
		b.WriteString(indent)
		b.WriteString(ch.Name())
		if ch.HasValue() {
			fmt.Fprintf(b, ": %s", ch.ValueKind())
		}
		fmt.Fprintf(b, " %s", ch.Cardinality())
		renderBody(b, ch.Children(), ch.Procedures(), depth+1)
		b.WriteByte('\n')
	}
	for _, p := range procs {
		fmt.Fprintf(b, "%sproc %s\n", indent, p)
	}
	b.WriteString(strings.Repeat("    ", depth))
	b.WriteString("}")
}
