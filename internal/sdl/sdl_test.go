package sdl

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

const figure3Source = `
# The schema of figure 3 of the paper: generalizations of classes and
# associations enable vague information.
schema Figure3 version 1

class Thing covering {
    Description: STRING 0..1
    Revised: DATE 1..1
}
class Data specializes Thing {
    Text 0..16 {
        Body 1..1 { Keywords: STRING 0..* }
        Selector: STRING 1..1
    }
}
class InputData specializes Data
class OutputData specializes Data
class Action specializes Thing

assoc Access covering (from: Data 1..*, by: Action 1..*)
assoc Read specializes Access (from: InputData 0..*, by: Action 0..*)
assoc Write specializes Access (from: OutputData 0..*, by: Action 0..*) {
    NumberOfWrites: INTEGER 1..1
    ErrorHandling: STRING 0..1
}
assoc Contained acyclic (contained: Action 0..1, container: Action 0..*)
`

func TestParseFigure3(t *testing.T) {
	s, err := Parse(figure3Source)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Figure3" || s.Version() != 1 || !s.Frozen() {
		t.Fatalf("header: name=%q version=%d frozen=%v", s.Name(), s.Version(), s.Frozen())
	}
	data := s.MustClass("Data")
	thing := s.MustClass("Thing")
	if !data.IsA(thing) || !thing.Covering() {
		t.Error("generalization lost in parse")
	}
	kw := s.MustClass("Data.Text.Body.Keywords")
	if kw.ValueKind() != value.KindString || kw.Cardinality() != schema.Any {
		t.Errorf("Keywords = %v %v", kw.ValueKind(), kw.Cardinality())
	}
	write := s.MustAssociation("Write")
	if !write.IsA(s.MustAssociation("Access")) {
		t.Error("association generalization lost")
	}
	if _, err := write.ResolveChild("NumberOfWrites"); err != nil {
		t.Error("attribute class lost")
	}
	if !s.MustAssociation("Contained").Acyclic() {
		t.Error("acyclic lost")
	}
	wf, _ := write.Role("from")
	if wf.Class() != s.MustClass("OutputData") || wf.Card != schema.Any {
		t.Errorf("Write.from = %v %v", wf.Class().QualifiedName(), wf.Card)
	}
}

// TestRoundTripPaperSchemas renders the programmatically built paper
// schemas and re-parses them; structure must survive.
func TestRoundTripPaperSchemas(t *testing.T) {
	for _, orig := range []*schema.Schema{schema.Figure2(), schema.Figure3()} {
		text := Render(orig)
		re, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of %s: %v\n%s", orig.Name(), err, text)
		}
		if re.Name() != orig.Name() || re.Version() != orig.Version() {
			t.Errorf("%s header changed: %s v%d", orig.Name(), re.Name(), re.Version())
		}
		on, rn := orig.ClassNames(), re.ClassNames()
		if len(on) != len(rn) {
			t.Fatalf("%s class count %d -> %d", orig.Name(), len(on), len(rn))
		}
		for i := range on {
			if on[i] != rn[i] {
				t.Errorf("%s class %q -> %q", orig.Name(), on[i], rn[i])
			}
			oc, rc := orig.MustClass(on[i]), re.MustClass(rn[i])
			if oc.Cardinality() != rc.Cardinality() || oc.ValueKind() != rc.ValueKind() ||
				oc.Covering() != rc.Covering() {
				t.Errorf("%s class %q attributes changed", orig.Name(), on[i])
			}
		}
		for _, oa := range orig.Associations() {
			ra, err := re.Association(oa.Name())
			if err != nil {
				t.Fatalf("%s association %q lost", orig.Name(), oa.Name())
			}
			if oa.Acyclic() != ra.Acyclic() || oa.Covering() != ra.Covering() {
				t.Errorf("association %q flags changed", oa.Name())
			}
			or, rr := oa.Roles(), ra.Roles()
			if len(or) != len(rr) {
				t.Fatalf("association %q role count", oa.Name())
			}
			for i := range or {
				if or[i].Name != rr[i].Name || or[i].Card != rr[i].Card ||
					or[i].Class().QualifiedName() != rr[i].Class().QualifiedName() {
					t.Errorf("association %q role %q changed", oa.Name(), or[i].Name)
				}
			}
			osup, rsup := oa.Super(), ra.Super()
			if (osup == nil) != (rsup == nil) {
				t.Errorf("association %q generalization changed", oa.Name())
			}
		}
	}
}

func TestRoundTripIdempotent(t *testing.T) {
	s := schema.Figure3()
	first := Render(s)
	second := Render(MustParse(first))
	if first != second {
		t.Errorf("Render not idempotent:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

func TestParseVersionDirective(t *testing.T) {
	s, err := Parse("schema S version 3\nclass A\nclass B\nassoc R (x: A 0..*, y: B 0..*)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != 3 {
		t.Errorf("version = %d", s.Version())
	}
	if !s.Frozen() {
		t.Error("not frozen")
	}
}

func TestParseProcs(t *testing.T) {
	src := `schema S
class A {
    T: STRING 0..1
    proc guard
}
class B
assoc R (x: A 0..*, y: B 0..*) {
    proc relGuard
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MustClass("A").Procedures(); len(got) != 1 || got[0] != "guard" {
		t.Errorf("class procs = %v", got)
	}
	if got := s.MustAssociation("R").Procedures(); len(got) != 1 || got[0] != "relGuard" {
		t.Errorf("assoc procs = %v", got)
	}
	// Procs survive the round trip.
	re := MustParse(Render(s))
	if got := re.MustClass("A").Procedures(); len(got) != 1 || got[0] != "guard" {
		t.Errorf("round-tripped class procs = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"class A",                           // missing schema header
		"schema",                            // missing name
		"schema S class",                    // missing class name
		"schema S class A specializes",      // missing super
		"schema S class A { T: NOPE 0..1 }", // unknown kind
		"schema S class A { T: STRING }",    // missing cardinality
		"schema S class A { T: STRING 2..1 }",
		"schema S class A { T: STRING 0..1 { X 0..1 } }", // body on value member
		"schema S assoc R (x: A 0..*)",                   // unknown class A... also unary
		"schema S class A assoc R (x: A 0..*)",           // unary association
		"schema S class A class A",                       // duplicate
		"schema S class A specializes B class B ???",     // bad char
		"schema S version 0 class A",                     // bad version
		"schema S version 99999999999999999999 class A",  // version overflows int
		"schema S class A { T 0..1",                      // unterminated body
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse succeeded on %q", src)
		}
	}
}

func TestParseForwardReferences(t *testing.T) {
	// Specialization target declared after the specializing class, and a
	// role referencing a class declared later.
	src := `schema S
class Sub specializes Base
class Base covering
class Other
assoc Spec specializes Gen (x: Sub 0..*, y: Other 0..*)
assoc Gen covering (x: Base 0..*, y: Other 0..*)
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.MustClass("Sub").IsA(s.MustClass("Base")) {
		t.Error("forward class generalization failed")
	}
	if !s.MustAssociation("Spec").IsA(s.MustAssociation("Gen")) {
		t.Error("forward association generalization failed")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Parse("schema S\nclass A { T: STRING 0.1 }"); !errors.Is(err, ErrSyntax) {
		t.Errorf("single dot: %v", err)
	}
	if _, err := Parse("schema S\nclass Ä"); !errors.Is(err, ErrSyntax) {
		t.Errorf("non-ascii: %v", err)
	}
}

func TestComments(t *testing.T) {
	src := "# leading comment\nschema S # trailing\nclass A # more\nclass B\nassoc R (x: A 0..*, y: B 0..*)\n# tail"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestRenderContainsSurfaceForms(t *testing.T) {
	text := Render(schema.Figure3())
	for _, want := range []string{
		"schema Figure3 version 1",
		"class Thing covering",
		"class Data specializes Thing",
		"Text 0..16",
		"Selector: STRING 1..1",
		"assoc Access covering (from: Data 1..*, by: Action 1..*)",
		"assoc Contained acyclic (contained: Action 0..1, container: Action 0..*)",
		"NumberOfWrites: INTEGER 1..1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered SDL missing %q:\n%s", want, text)
		}
	}
}
