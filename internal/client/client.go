// Package client implements the client half of SEED's two-level multi-user
// extension: retrieval goes to the central server; updates are staged
// against local copies in a Workspace and sent back in one check-in, which
// the server applies as a single transaction.
package client

import (
	"errors"
	"fmt"
	"net"
	"sort"

	"repro/internal/wire"
)

// Client errors. ErrLocked and ErrNotLocked mirror the server's lock
// errors: the wire protocol carries an error code alongside the message, so
// the identity survives the round trip and callers can errors.Is-match —
// a checkout that fails with ErrLocked is retryable once the holder checks
// in or releases.
var (
	ErrRemote    = errors.New("client: server error")
	ErrLocked    = errors.New("client: object is checked out by another client")
	ErrNotLocked = errors.New("client: object is not checked out by this client")
	// ErrConflict mirrors the server's transaction-conflict error: two
	// concurrently staged check-ins overlapped. Retryable — check out
	// again and re-stage the batch.
	ErrConflict = errors.New("client: check-in conflicted with a concurrent check-in")
)

// Client is one connection to a SEED server.
type Client struct {
	conn net.Conn
	id   string
}

// Dial connects and performs the hello handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpHello})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.id = resp.ClientID
	return c, nil
}

// ID returns the server-assigned client identity.
func (c *Client) ID() string { return c.id }

// Close closes the connection; the server drops any remaining locks.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	if err := wire.WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp wire.Response
	if err := wire.ReadFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(&resp)
	}
	return &resp, nil
}

// remoteError rebuilds a matchable error from a failure response: every
// remote error wraps ErrRemote, and responses carrying a wire code
// additionally wrap the corresponding sentinel.
func remoteError(resp *wire.Response) error {
	switch resp.Code {
	case wire.CodeLocked:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrLocked, resp.Err)
	case wire.CodeNotLocked:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrNotLocked, resp.Err)
	case wire.CodeConflict:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrConflict, resp.Err)
	}
	return fmt.Errorf("%w: %s", ErrRemote, resp.Err)
}

// Get retrieves object subtrees by name (no locks).
func (c *Client) Get(names ...string) ([]wire.Snapshot, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpGet, Names: names})
	if err != nil {
		return nil, err
	}
	return resp.Snapshots, nil
}

// List lists independent object names, optionally restricted to a class
// (with specializations).
func (c *Client) List(class string) ([]string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpList, Class: class})
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), resp.Names...)
	sort.Strings(names)
	return names, nil
}

// SaveVersion snapshots the central database.
func (c *Client) SaveVersion(note string) (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpSaveVersion, Note: note})
	if err != nil {
		return "", err
	}
	return resp.Version, nil
}

// Versions lists the central database's versions.
func (c *Client) Versions() ([]wire.VersionInfo, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpVersions})
	if err != nil {
		return nil, err
	}
	return resp.Versions, nil
}

// Completeness runs the completeness check on the central database.
func (c *Client) Completeness() ([]wire.Finding, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCompleteness})
	if err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// Stats returns a one-line state summary.
func (c *Client) Stats() (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return "", err
	}
	return resp.Stats, nil
}

// Release drops locks without updating.
func (c *Client) Release(names ...string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpRelease, Names: names})
	return err
}

// Checkout locks the named objects in the central database and returns a
// workspace holding local copies. Updates staged in the workspace are
// applied by Commit as a single transaction.
func (c *Client) Checkout(names ...string) (*Workspace, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCheckout, Names: names})
	if err != nil {
		return nil, err
	}
	ws := &Workspace{
		client: c,
		roots:  append([]string(nil), names...),
		copies: make(map[string]wire.Snapshot, len(resp.Snapshots)),
	}
	for _, s := range resp.Snapshots {
		ws.copies[s.Root] = s
	}
	return ws, nil
}

// Workspace holds checked-out local copies and staged updates.
type Workspace struct {
	client  *Client
	roots   []string
	copies  map[string]wire.Snapshot
	updates []wire.Update
	done    bool
}

// Roots returns the checked-out object names.
func (w *Workspace) Roots() []string { return append([]string(nil), w.roots...) }

// Copy returns the local copy of a checked-out object subtree.
func (w *Workspace) Copy(root string) (wire.Snapshot, bool) {
	s, ok := w.copies[root]
	return s, ok
}

// Staged returns the number of staged updates.
func (w *Workspace) Staged() int { return len(w.updates) }

// CreateObject stages creation of a new independent object.
func (w *Workspace) CreateObject(class, name string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateCreateObject, Class: class, Name: name})
}

// CreateSub stages creation of a structured sub-object under a path.
func (w *Workspace) CreateSub(parentPath, role string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateCreateSub, Path: parentPath, Role: role})
}

// CreateValue stages creation of a value sub-object under a path.
func (w *Workspace) CreateValue(parentPath, role string, kind uint8, value string) {
	w.updates = append(w.updates, wire.Update{
		Kind: wire.UpdateCreateSub, Path: parentPath, Role: role,
		ValueKind: kind, Value: value,
	})
}

// SetValue stages a value update at a path.
func (w *Workspace) SetValue(path string, kind uint8, value string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateSetValue, Path: path, ValueKind: kind, Value: value})
}

// CreateRelationship stages a relationship between paths.
func (w *Workspace) CreateRelationship(assoc string, ends map[string]string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateCreateRel, Assoc: assoc, Ends: ends})
}

// Delete stages a deletion at a path.
func (w *Workspace) Delete(path string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateDelete, Path: path})
}

// Reclassify stages a re-classification at a path.
func (w *Workspace) Reclassify(path, newClass string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateReclassify, Path: path, Class: newClass})
}

// Commit sends the staged updates for application as a single transaction
// and releases the locks on success. The workspace is spent afterwards.
func (w *Workspace) Commit() error {
	if w.done {
		return errors.New("client: workspace already committed or abandoned")
	}
	_, err := w.client.roundTrip(&wire.Request{
		Op:      wire.OpCheckin,
		Names:   w.roots,
		Updates: w.updates,
	})
	if err != nil {
		return err
	}
	w.done = true
	return nil
}

// Abandon drops the staged updates and releases the locks.
func (w *Workspace) Abandon() error {
	if w.done {
		return nil
	}
	w.done = true
	return w.client.Release(w.roots...)
}
