// Package client implements the client half of SEED's two-level multi-user
// extension: retrieval goes to the central server; updates are staged
// against local copies in a Workspace and sent back in one check-in, which
// the server applies as a single transaction.
//
// The client speaks wire protocol v2: requests carry correlation ids, a
// demultiplexing goroutine routes responses to their callers through an
// in-flight map, and any number of goroutines may share one Client — the
// blocking calls (Get, Query, Checkout, ...) pipeline transparently, and
// Send/Await expose the pipeline directly for callers that want many
// requests in flight from one goroutine. DialLockstep pins a connection to
// the v1 one-request-one-response protocol.
//
// Transient server-side failures — a lock held by another client
// (ErrLocked), a check-in conflict (ErrConflict), or an admission-control
// rejection when the server is overloaded (ErrOverloaded) — are retryable:
// wrap the operation in Retry, which backs off exponentially with jitter
// (capped, context-bounded) and gives up immediately on everything else.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/wire"
)

// Client errors. ErrLocked and ErrNotLocked mirror the server's lock
// errors: the wire protocol carries an error code alongside the message, so
// the identity survives the round trip and callers can errors.Is-match —
// a checkout that fails with ErrLocked is retryable once the holder checks
// in or releases.
var (
	ErrRemote    = errors.New("client: server error")
	ErrLocked    = errors.New("client: object is checked out by another client")
	ErrNotLocked = errors.New("client: object is not checked out by this client")
	// ErrConflict mirrors the server's transaction-conflict error: two
	// concurrently staged check-ins overlapped. Retryable — check out
	// again and re-stage the batch.
	ErrConflict = errors.New("client: check-in conflicted with a concurrent check-in")
	// ErrOverloaded mirrors the server's admission-control rejection: the
	// global in-flight limit was reached and the bounded wait queue was
	// full, so the request was shed without executing. Retryable with
	// backoff — Retry handles it.
	ErrOverloaded = errors.New("client: server overloaded, request shed")
	// ErrShuttingDown mirrors the server's graceful-drain refusal: the
	// server stopped accepting new mutations while it drains. Retryable
	// against the server's replacement, not against this server.
	ErrShuttingDown = errors.New("client: server shutting down, mutation refused")
	// ErrNotPrimary mirrors a read-only follower's refusal: mutations (and
	// log subscriptions) must go to the primary. Retryable after redialing
	// — never against this connection (Classify says ClassRedial).
	ErrNotPrimary = errors.New("client: server is a read-only follower, mutate on the primary")
)

// Client is one connection to a SEED server. A v2 client is safe for
// concurrent use: independent goroutines' requests interleave on the wire
// and their responses demultiplex back through the correlation map. A
// lockstep (v1) client serializes internally.
type Client struct {
	conn  net.Conn
	id    string
	proto int

	// Writes go through a buffered writer that is flushed when a caller
	// blocks awaiting a response (see flush), so a burst of pipelined sends
	// leaves the client as one wire write instead of one syscall each.
	wmu sync.Mutex    // serializes frame writes (and, in lockstep mode, whole round trips)
	bw  *bufio.Writer // seed:guarded-by(wmu)
	wr  *wire.Writer  // seed:guarded-by(wmu)
	rd  *wire.Reader  // owned by the demux goroutine once it starts

	mu      sync.Mutex
	pending map[uint64]chan result         // seed:guarded-by(mu) — Seq -> caller awaiting the response
	streams map[uint64]chan *wire.Response // seed:guarded-by(mu) — Seq -> log-stream tap (SubscribeLog)
	nextSeq uint64                         // seed:guarded-by(mu)
	err     error                          // seed:guarded-by(mu) — sticky transport failure; set once the demux dies

	// done closes when the connection fails (after err is set), waking
	// stream readers; pending callers get their error delivered directly.
	done     chan struct{}
	doneOnce sync.Once
}

// result is one demultiplexed response delivery.
type result struct {
	resp *wire.Response
	err  error
}

// Dial connects and performs the hello handshake, negotiating protocol v2.
func Dial(addr string) (*Client, error) { return dial(addr, wire.ProtoV2) }

// DialLockstep connects with the v1 protocol: no correlation ids, one
// request and one response at a time. It exists for protocol-compatibility
// tests and as the E10 pipelining baseline.
func DialLockstep(addr string) (*Client, error) { return dial(addr, 0) }

func dial(addr string, proto int) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 32<<10),
		rd:      wire.NewReader(bufio.NewReader(conn)),
		pending: make(map[uint64]chan result),
		done:    make(chan struct{}),
	}
	c.wr = wire.NewWriter(c.bw)
	// The hello runs lockstep in either mode: the demux starts only after
	// the server has answered with the negotiated version.
	if err := c.writeFlush(&wire.Request{Op: wire.OpHello, Proto: proto}); err != nil {
		conn.Close()
		return nil, err
	}
	var resp wire.Response
	if err := c.rd.Read(&resp); err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Err != "" {
		conn.Close()
		return nil, remoteError(&resp)
	}
	c.id = resp.ClientID
	c.proto = resp.Proto
	if c.proto >= wire.ProtoV2 {
		go c.demux()
	}
	return c, nil
}

// ID returns the server-assigned client identity.
func (c *Client) ID() string { return c.id }

// Close closes the connection; the server drops any remaining locks, and
// every request still in flight fails. The failure is marked before the
// socket closes, so a Send racing with Close can never succeed into a
// buffer nobody will ever flush.
func (c *Client) Close() error {
	c.fail(errors.New("client: connection closed"))
	return nil
}

// demux routes incoming responses to their awaiting callers by correlation
// id. When the connection dies — Close, a network error, or a protocol
// violation — every pending and future request fails with the same sticky
// error.
func (c *Client) demux() {
	for {
		resp := &wire.Response{}
		if err := c.rd.Read(resp); err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		if sch, isStream := c.streams[resp.Seq]; isStream {
			c.mu.Unlock()
			// A full stream tap blocks the demux: the reader stops pulling
			// frames and backpressure reaches the server through TCP. A
			// subscriber that stops consuming its stream therefore stalls
			// this whole connection — followers dedicate one.
			select {
			case sch <- resp:
			case <-c.done:
				return
			}
			continue
		}
		ch, ok := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("client: response with unmatched seq %d", resp.Seq))
			return
		}
		ch <- result{resp: resp}
	}
}

// fail marks the connection broken, closes the socket (a failed client
// never holds a live connection — the server then drops its locks), and
// delivers the error to every pending request exactly once.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	stranded := c.pending
	c.pending = make(map[uint64]chan result)
	c.mu.Unlock()
	c.conn.Close()
	// done closes strictly after err is published: a stream reader woken by
	// done always observes the sticky error.
	c.doneOnce.Do(func() { close(c.done) })
	for _, ch := range stranded {
		ch <- result{err: err}
	}
}

// writeFlush writes one frame and pushes it onto the wire immediately.
func (c *Client) writeFlush(v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.wr.Write(v); err != nil {
		return err
	}
	return c.bw.Flush()
}

// flush pushes buffered sends onto the wire. A flush failure kills the
// connection: the error reaches every pending request through fail.
func (c *Client) flush() {
	c.wmu.Lock()
	err := c.bw.Flush()
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("client: connection lost: %w", err))
	}
}

// Pending is one in-flight request; Await blocks until its response
// arrives.
type Pending struct {
	c  *Client
	ch chan result
}

// Send stages a request on the pipeline and returns a handle to await its
// response; it never waits for the server. The frame is buffered and hits
// the wire when some caller blocks in Await (or another request flushes),
// so bursts of sends coalesce into single writes. Mutating requests sent
// this way still execute in send order — the server preserves per-client
// FIFO order for them — so a checkout may be followed immediately by the
// check-in that depends on it. Requires a v2 connection (Dial).
func (c *Client) Send(req *wire.Request) (*Pending, error) {
	if c.proto < wire.ProtoV2 {
		return nil, errors.New("client: pipelining requires protocol v2 (connection is lockstep)")
	}
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextSeq++
	seq := c.nextSeq
	c.pending[seq] = ch
	c.mu.Unlock()
	req.Seq = seq

	c.wmu.Lock()
	err := c.wr.Write(req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	return &Pending{c: c, ch: ch}, nil
}

// Await blocks until the response arrives and maps remote failures onto
// the client's matchable error values. It first flushes the send buffer —
// the request (and everything staged behind it) cannot be answered while
// it sits client-side.
func (p *Pending) Await() (*wire.Response, error) {
	select {
	case r := <-p.ch:
		return p.finish(r)
	default:
	}
	p.c.flush()
	return p.finish(<-p.ch)
}

func (p *Pending) finish(r result) (*wire.Response, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.resp.Err != "" {
		return nil, remoteError(r.resp)
	}
	return r.resp, nil
}

// roundTrip issues one blocking request. On a v2 connection it rides the
// pipeline (other goroutines' requests interleave freely); on a lockstep
// connection it holds the write lock across the write and the read.
func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	if c.proto >= wire.ProtoV2 {
		p, err := c.Send(req)
		if err != nil {
			return nil, err
		}
		return p.Await()
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.wr.Write(req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp := &wire.Response{}
	if err := c.rd.Read(resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(resp)
	}
	return resp, nil
}

// remoteError rebuilds a matchable error from a failure response: every
// remote error wraps ErrRemote, and responses carrying a wire code
// additionally wrap the corresponding sentinel.
func remoteError(resp *wire.Response) error {
	switch resp.Code {
	case wire.CodeLocked:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrLocked, resp.Err)
	case wire.CodeNotLocked:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrNotLocked, resp.Err)
	case wire.CodeConflict:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrConflict, resp.Err)
	case wire.CodeOverloaded:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrOverloaded, resp.Err)
	case wire.CodeShuttingDown:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrShuttingDown, resp.Err)
	case wire.CodeNotPrimary:
		return fmt.Errorf("%w: %w: %s", ErrRemote, ErrNotPrimary, resp.Err)
	}
	return fmt.Errorf("%w: %s", ErrRemote, resp.Err)
}

// Get retrieves object subtrees by name (no locks).
func (c *Client) Get(names ...string) ([]wire.Snapshot, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpGet, Names: names})
	if err != nil {
		return nil, err
	}
	return resp.Snapshots, nil
}

// List lists independent object names, optionally restricted to a class
// (with specializations).
func (c *Client) List(class string) ([]string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpList, Class: class})
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), resp.Names...)
	sort.Strings(names)
	return names, nil
}

// Query executes a query server-side against one consistent indexed
// snapshot: selection by class (optionally with specializations), name
// glob, and typed value predicates, then Follow navigation, with
// limit/offset paging of the final set. It returns the page of matching
// objects and the total match count before paging, so callers fetching a
// large result advance Offset until the pages cover Total.
func (c *Client) Query(q *wire.Query) ([]wire.Object, int, error) {
	objs, total, _, err := c.QueryPlan(q)
	return objs, total, err
}

// QueryPlan executes a query like Query and also returns the access plan
// the server's planner executed — the explain surface of the wire
// protocol. The plan is nil when the server predates plan reporting.
func (c *Client) QueryPlan(q *wire.Query) ([]wire.Object, int, *wire.QueryPlan, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpQuery, Query: q})
	if err != nil {
		return nil, 0, nil, err
	}
	return resp.Objects, resp.Total, resp.Plan, nil
}

// SaveVersion snapshots the central database.
func (c *Client) SaveVersion(note string) (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpSaveVersion, Note: note})
	if err != nil {
		return "", err
	}
	return resp.Version, nil
}

// Versions lists the central database's versions.
func (c *Client) Versions() ([]wire.VersionInfo, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpVersions})
	if err != nil {
		return nil, err
	}
	return resp.Versions, nil
}

// Completeness runs the completeness check on the central database.
func (c *Client) Completeness() ([]wire.Finding, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCompleteness})
	if err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// Stats returns a one-line state summary.
func (c *Client) Stats() (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return "", err
	}
	return resp.Stats, nil
}

// StatsInfo returns the structured state summary.
func (c *Client) StatsInfo() (wire.Stats, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.StatsV2 == nil {
		return wire.Stats{}, fmt.Errorf("%w: server sent no structured stats", ErrRemote)
	}
	return *resp.StatsV2, nil
}

// Release drops locks without updating.
func (c *Client) Release(names ...string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpRelease, Names: names})
	return err
}

// Checkout locks the named objects in the central database and returns a
// workspace holding local copies. Updates staged in the workspace are
// applied by Commit as a single transaction.
func (c *Client) Checkout(names ...string) (*Workspace, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCheckout, Names: names})
	if err != nil {
		return nil, err
	}
	ws := &Workspace{
		client: c,
		roots:  append([]string(nil), names...),
		copies: make(map[string]wire.Snapshot, len(resp.Snapshots)),
	}
	for _, s := range resp.Snapshots {
		ws.copies[s.Root] = s
	}
	return ws, nil
}

// Workspace holds checked-out local copies and staged updates.
type Workspace struct {
	client  *Client
	roots   []string
	copies  map[string]wire.Snapshot
	updates []wire.Update
	done    bool
}

// Roots returns the checked-out object names.
func (w *Workspace) Roots() []string { return append([]string(nil), w.roots...) }

// Copy returns the local copy of a checked-out object subtree.
func (w *Workspace) Copy(root string) (wire.Snapshot, bool) {
	s, ok := w.copies[root]
	return s, ok
}

// Staged returns the number of staged updates.
func (w *Workspace) Staged() int { return len(w.updates) }

// CreateObject stages creation of a new independent object.
func (w *Workspace) CreateObject(class, name string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateCreateObject, Class: class, Name: name})
}

// CreateSub stages creation of a structured sub-object under a path.
func (w *Workspace) CreateSub(parentPath, role string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateCreateSub, Path: parentPath, Role: role})
}

// CreateValue stages creation of a value sub-object under a path.
func (w *Workspace) CreateValue(parentPath, role string, kind uint8, value string) {
	w.updates = append(w.updates, wire.Update{
		Kind: wire.UpdateCreateSub, Path: parentPath, Role: role,
		ValueKind: kind, Value: value,
	})
}

// SetValue stages a value update at a path.
func (w *Workspace) SetValue(path string, kind uint8, value string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateSetValue, Path: path, ValueKind: kind, Value: value})
}

// CreateRelationship stages a relationship between paths.
func (w *Workspace) CreateRelationship(assoc string, ends map[string]string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateCreateRel, Assoc: assoc, Ends: ends})
}

// Delete stages a deletion at a path.
func (w *Workspace) Delete(path string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateDelete, Path: path})
}

// Reclassify stages a re-classification at a path.
func (w *Workspace) Reclassify(path, newClass string) {
	w.updates = append(w.updates, wire.Update{Kind: wire.UpdateReclassify, Path: path, Class: newClass})
}

// Commit sends the staged updates for application as a single transaction
// and releases the locks on success. The workspace is spent afterwards.
func (w *Workspace) Commit() error {
	if w.done {
		return errors.New("client: workspace already committed or abandoned")
	}
	_, err := w.client.roundTrip(&wire.Request{
		Op:      wire.OpCheckin,
		Names:   w.roots,
		Updates: w.updates,
	})
	if err != nil {
		return err
	}
	w.done = true
	return nil
}

// Abandon drops the staged updates and releases the locks.
func (w *Workspace) Abandon() error {
	if w.done {
		return nil
	}
	w.done = true
	return w.client.Release(w.roots...)
}
