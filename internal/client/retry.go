package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// RetryPolicy shapes Retry's backoff: the delay before attempt n+1 is
// drawn uniformly from [d/2, d) where d = min(Cap, Base·2ⁿ) — exponential
// growth, a cap so a long outage never produces unbounded sleeps, and
// jitter so a herd of clients rejected together does not retry together.
type RetryPolicy struct {
	Base     time.Duration // first backoff step (default 5ms)
	Cap      time.Duration // largest backoff step (default 500ms)
	Attempts int           // total attempts including the first (default 8)
}

// DefaultRetry is the policy Retry uses: 8 attempts, 5ms doubling to a
// 500ms cap — about two seconds of total patience.
var DefaultRetry = RetryPolicy{Base: 5 * time.Millisecond, Cap: 500 * time.Millisecond, Attempts: 8}

// FailureClass is the retry decision an error maps onto. Retryable and
// RetryableWith collapse it to a boolean; callers that manage their own
// connections branch on the class directly.
type FailureClass int

const (
	// ClassPermanent: retrying cannot help — a validation failure, an
	// unknown name, a protocol error. Surface it.
	ClassPermanent FailureClass = iota
	// ClassRetry: transient pushback from this server — a held lock, a
	// check-in conflict, an admission-control rejection. Retry the same
	// connection with backoff.
	ClassRetry
	// ClassRedial: this server will never stop refusing — it is draining
	// for shutdown, or it is a read-only follower. Retry only against a
	// different endpoint: the drained server's replacement, the primary.
	ClassRedial
)

// Classify maps an error onto its retry decision. Errors that are not the
// client's matchable sentinels (transport failures included) classify as
// permanent: a retry loop must not spin on an error it cannot reason about.
func Classify(err error) FailureClass {
	switch {
	case errors.Is(err, ErrLocked), errors.Is(err, ErrConflict), errors.Is(err, ErrOverloaded):
		return ClassRetry
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrNotPrimary):
		return ClassRedial
	}
	return ClassPermanent
}

// Retryable reports whether an error is transient server pushback worth
// retrying: a lock held by another client, a check-in conflict, or an
// admission-control rejection. Everything else — including ErrShuttingDown
// and ErrNotPrimary, which this server will never stop returning — is
// permanent for the purposes of a retry loop against one connection.
func Retryable(err error) bool {
	return Classify(err) == ClassRetry
}

// RetryableWith is Retryable for callers that can redial: when canRedial is
// true, the redial class (shutting-down, not-primary) counts as retryable
// too, because the caller re-resolves its endpoint between attempts.
func RetryableWith(err error, canRedial bool) bool {
	switch Classify(err) {
	case ClassRetry:
		return true
	case ClassRedial:
		return canRedial
	case ClassPermanent:
		return false
	}
	return false
}

// Retry runs op, retrying with DefaultRetry's jittered exponential backoff
// while it fails with a Retryable error and ctx is live. It returns nil on
// the first success, the error unchanged when it is not retryable, and the
// last retryable error (annotated) when attempts or the context run out —
// still matchable with errors.Is against the underlying sentinel.
func Retry(ctx context.Context, op func() error) error {
	return RetryWith(ctx, DefaultRetry, op)
}

// RetryWith is Retry under an explicit policy.
func RetryWith(ctx context.Context, p RetryPolicy, op func() error) error {
	if p.Base <= 0 {
		p.Base = DefaultRetry.Base
	}
	if p.Cap <= 0 {
		p.Cap = DefaultRetry.Cap
	}
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetry.Attempts
	}
	var last error
	for n := 0; n < p.Attempts; n++ {
		if err := ctx.Err(); err != nil {
			if last == nil {
				return err
			}
			return fmt.Errorf("retry cancelled: %w (last attempt: %w)", err, last)
		}
		last = op()
		if last == nil || !Retryable(last) {
			return last
		}
		if n == p.Attempts-1 {
			break // spent; no point sleeping just to give up
		}
		d := p.Base << n
		if d <= 0 || d > p.Cap {
			d = p.Cap
		}
		// Equal jitter: [d/2, d) keeps a meaningful floor while spreading
		// a synchronized burst of rejections across half a step.
		sleep := d/2 + rand.N(d/2+1)
		select {
		case <-ctx.Done():
			return fmt.Errorf("retry cancelled: %w (last attempt: %w)", ctx.Err(), last)
		case <-time.After(sleep):
		}
	}
	return fmt.Errorf("retry attempts exhausted: %w", last)
}
