package client_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/seed"
)

func startServer(t *testing.T) (string, *seed.Database) {
	t.Helper()
	db, err := seed.NewMemory(seed.Figure3Schema())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, db
}

func TestDialFailure(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestWorkspaceLifecycle(t *testing.T) {
	addr, db := startServer(t)
	_, _ = db.CreateObject("Data", "Doc")

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ws, err := c.Checkout("Doc")
	if err != nil {
		t.Fatal(err)
	}
	if got := ws.Roots(); len(got) != 1 || got[0] != "Doc" {
		t.Errorf("roots = %v", got)
	}
	if _, ok := ws.Copy("Doc"); !ok {
		t.Error("copy missing")
	}
	if _, ok := ws.Copy("Nope"); ok {
		t.Error("phantom copy")
	}
	ws.CreateValue("Doc", "Description", uint8(seed.KindString), "v")
	if ws.Staged() != 1 {
		t.Errorf("staged = %d", ws.Staged())
	}
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	// A spent workspace cannot commit again.
	if err := ws.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	// Abandon after commit is a no-op.
	if err := ws.Abandon(); err != nil {
		t.Errorf("abandon after commit: %v", err)
	}
}

func TestCheckoutUnknownObject(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Checkout("Missing"); err == nil {
		t.Error("checkout of unknown object succeeded")
	}
	if _, err := c.Get("Missing"); err == nil {
		t.Error("get of unknown object succeeded")
	}
}

func TestWorkspaceStagingKinds(t *testing.T) {
	addr, db := startServer(t)
	_, _ = db.CreateObject("Data", "Doc")
	c, _ := client.Dial(addr)
	defer c.Close()
	ws, err := c.Checkout("Doc")
	if err != nil {
		t.Fatal(err)
	}
	ws.CreateObject("Action", "Worker")
	ws.CreateSub("Doc", "Text")
	ws.CreateValue("Doc", "Description", uint8(seed.KindString), "described")
	ws.CreateRelationship("Access", map[string]string{"from": "Doc", "by": "Worker"})
	ws.Reclassify("Doc", "OutputData")
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	o, ok := db.GetObject("Doc")
	if !ok || o.Class.QualifiedName() != "OutputData" {
		t.Errorf("Doc after batch: %v %v", o.Class, ok)
	}
	if len(db.View().RelationshipsOf(o.ID)) != 1 {
		t.Error("relationship missing")
	}
	// Delete through a second workspace.
	ws2, err := c.Checkout("Worker")
	if err != nil {
		t.Fatal(err)
	}
	ws2.Delete("Worker")
	if err := ws2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GetObject("Worker"); ok {
		t.Error("delete not applied")
	}
}

func TestRemoteErrorText(t *testing.T) {
	addr, db := startServer(t)
	_, _ = db.CreateObject("Data", "Doc")
	c1, _ := client.Dial(addr)
	defer c1.Close()
	c2, _ := client.Dial(addr)
	defer c2.Close()
	if _, err := c1.Checkout("Doc"); err != nil {
		t.Fatal(err)
	}
	_, err := c2.Checkout("Doc")
	if err == nil || !strings.Contains(err.Error(), "checked out") {
		t.Errorf("lock error text: %v", err)
	}
}

// TestSendAwaitPipeline: the async pipeline API keeps many requests in
// flight on one connection and correlates every response to its own call;
// closing the connection fails the requests still in flight — and every
// later one — instead of stranding them.
func TestSendAwaitPipeline(t *testing.T) {
	addr, db := startServer(t)
	for i := 0; i < 4; i++ {
		if _, err := db.CreateObject("Data", fmt.Sprintf("D%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var pends []*client.Pending
	for i := 0; i < 4; i++ {
		p, err := c.Send(&wire.Request{Op: wire.OpGet, Names: []string{fmt.Sprintf("D%d", i)}})
		if err != nil {
			t.Fatal(err)
		}
		pends = append(pends, p)
	}
	// Await out of order: correlation, not arrival order, decides.
	for i := 3; i >= 0; i-- {
		resp, err := pends[i].Await()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("D%d", i); len(resp.Snapshots) != 1 || resp.Snapshots[0].Root != want {
			t.Errorf("await %d: got %+v", i, resp.Snapshots)
		}
	}

	inflight, err := c.Send(&wire.Request{Op: wire.OpGet, Names: []string{"D0"}})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := inflight.Await(); err == nil {
		// The response may have already been in flight when Close landed;
		// but the next request must fail for sure.
		t.Log("in-flight request won the race against Close")
	}
	if _, err := c.Send(&wire.Request{Op: wire.OpStats}); err == nil {
		t.Error("send on a closed client succeeded")
	}
	if _, err := c.Get("D0"); err == nil {
		t.Error("blocking call on a closed client succeeded")
	}
}
