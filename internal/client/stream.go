package client

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Log subscription, subscriber side. SubscribeLog turns one Seq into an
// unbounded response stream: the demux routes every response carrying that
// Seq to the LogStream instead of completing a pending call, and Next hands
// chunks to the follower in arrival order. The rest of the connection keeps
// working — stats and reads pipeline alongside the feed — but a stream that
// is not consumed eventually blocks the demux (bounded tap), so a follower
// dedicates a connection to its subscription.

// LogStream is one replication feed. Not safe for concurrent Next calls.
type LogStream struct {
	c   *Client
	seq uint64
	ch  chan *wire.Response
}

// SubscribeLog requests the server's replication feed: a snapshot chunk,
// sealed-segment record chunks, a caught-up marker, then live record chunks
// until the connection dies. Requires a v2 connection (Dial). The server
// refuses it while draining, and on a follower (ErrNotPrimary) — feeds come
// from the primary only.
func (c *Client) SubscribeLog() (*LogStream, error) {
	if c.proto < wire.ProtoV2 {
		return nil, errors.New("client: log subscription requires protocol v2 (connection is lockstep)")
	}
	ch := make(chan *wire.Response, 16)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextSeq++
	seq := c.nextSeq
	if c.streams == nil {
		c.streams = make(map[uint64]chan *wire.Response)
	}
	c.streams[seq] = ch
	c.mu.Unlock()
	if err := c.writeFlush(&wire.Request{Op: wire.OpSubscribeLog, Seq: seq}); err != nil {
		c.mu.Lock()
		delete(c.streams, seq)
		c.mu.Unlock()
		return nil, err
	}
	return &LogStream{c: c, seq: seq, ch: ch}, nil
}

// Next blocks until the next chunk arrives. It returns the connection's
// sticky error once the transport dies, and a matchable remote error when
// the server ends the stream with a failure response (a lagged subscriber,
// a draining server). Chunks received before a failure are delivered first.
func (s *LogStream) Next() (*wire.LogChunk, error) {
	select {
	case resp := <-s.ch:
		return chunkOf(resp)
	case <-s.c.done:
	}
	// The connection failed; drain what the demux delivered before dying.
	select {
	case resp := <-s.ch:
		return chunkOf(resp)
	default:
	}
	s.c.mu.Lock()
	err := s.c.err
	s.c.mu.Unlock()
	if err == nil {
		err = errors.New("client: connection closed")
	}
	return nil, err
}

func chunkOf(resp *wire.Response) (*wire.LogChunk, error) {
	if resp.Err != "" {
		return nil, remoteError(resp)
	}
	if resp.Log == nil {
		return nil, fmt.Errorf("%w: stream response without log chunk", ErrRemote)
	}
	return resp.Log, nil
}

// Close detaches the stream from the demux. The server keeps publishing
// until the connection closes, so Close on a live connection is for tests;
// a follower ends a subscription by closing the client.
func (s *LogStream) Close() {
	s.c.mu.Lock()
	delete(s.c.streams, s.seq)
	s.c.mu.Unlock()
}
