package client_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := client.RetryWith(context.Background(),
		client.RetryPolicy{Base: time.Millisecond, Cap: 4 * time.Millisecond, Attempts: 6},
		func() error {
			calls++
			if calls < 3 {
				return fmt.Errorf("wrapped: %w", client.ErrOverloaded)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	boom := errors.New("permanent")
	calls := 0
	err := client.Retry(context.Background(), func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the permanent error unchanged", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retries of a permanent error)", calls)
	}
}

func TestRetryExhaustionKeepsIdentity(t *testing.T) {
	calls := 0
	err := client.RetryWith(context.Background(),
		client.RetryPolicy{Base: time.Microsecond, Cap: time.Microsecond, Attempts: 4},
		func() error { calls++; return client.ErrLocked })
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
	if !errors.Is(err, client.ErrLocked) {
		t.Errorf("exhaustion error %v lost the sentinel identity", err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- client.RetryWith(ctx,
			client.RetryPolicy{Base: time.Hour, Cap: time.Hour, Attempts: 10},
			func() error { calls++; return client.ErrConflict })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
		if !errors.Is(err, client.ErrConflict) {
			t.Errorf("err = %v, should keep the last attempt's identity", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry did not notice the cancelled context")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, err := range []error{client.ErrLocked, client.ErrConflict, client.ErrOverloaded} {
		if !client.Retryable(fmt.Errorf("w: %w", err)) {
			t.Errorf("Retryable(%v) = false", err)
		}
	}
	for _, err := range []error{client.ErrShuttingDown, client.ErrNotLocked, client.ErrRemote, errors.New("x")} {
		if client.Retryable(err) {
			t.Errorf("Retryable(%v) = true", err)
		}
	}
}

// TestClassifyTable pins the full failure taxonomy: transient pushback
// retries in place, a draining or follower server demands a redial, and
// everything the client cannot reason about is permanent.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		err  error
		want client.FailureClass
	}{
		{client.ErrLocked, client.ClassRetry},
		{client.ErrConflict, client.ClassRetry},
		{client.ErrOverloaded, client.ClassRetry},
		{client.ErrShuttingDown, client.ClassRedial},
		{client.ErrNotPrimary, client.ClassRedial},
		{client.ErrNotLocked, client.ClassPermanent},
		{client.ErrRemote, client.ClassPermanent},
		{errors.New("transport: broken pipe"), client.ClassPermanent},
		{nil, client.ClassPermanent},
	}
	for _, c := range cases {
		if got := client.Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
		// Wrapping must not change the decision.
		if c.err != nil {
			if got := client.Classify(fmt.Errorf("w: %w", c.err)); got != c.want {
				t.Errorf("Classify(wrapped %v) = %v, want %v", c.err, got, c.want)
			}
		}
	}
}

// TestRetryableWithRedial: the redial class counts as retryable exactly
// when the caller can re-resolve its endpoint between attempts.
func TestRetryableWithRedial(t *testing.T) {
	for _, c := range []struct {
		err       error
		canRedial bool
		want      bool
	}{
		{client.ErrOverloaded, false, true}, // in-place retry never needs a redial
		{client.ErrOverloaded, true, true},
		{client.ErrShuttingDown, false, false},
		{client.ErrShuttingDown, true, true},
		{client.ErrNotPrimary, false, false},
		{client.ErrNotPrimary, true, true},
		{client.ErrRemote, true, false}, // permanent stays permanent with a dialer in hand
	} {
		if got := client.RetryableWith(fmt.Errorf("w: %w", c.err), c.canRedial); got != c.want {
			t.Errorf("RetryableWith(%v, %v) = %v, want %v", c.err, c.canRedial, got, c.want)
		}
	}
	// Retryable is RetryableWith pinned to one connection.
	if client.Retryable(client.ErrNotPrimary) {
		t.Error("Retryable(ErrNotPrimary) = true; a follower never becomes the primary on retry")
	}
}
