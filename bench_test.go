package repro

// One benchmark group per evaluation artifact of the paper (experiments
// E1-E5 of DESIGN.md) plus the ablation groups A1-A3. The paper reports no
// absolute numbers — its host is a 1986 workstation — so these benches
// document the cost shape of each mechanism: what the eager consistency
// checking costs per update, how delta versions scale against full copies,
// what pattern splicing costs per inheritor, and how the SEED-backed
// specification tool compares against the plain-struct baseline.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/spades"
	"repro/internal/spades/baseline"
	"repro/seed"
)

func mustMem(b *testing.B, sch *seed.Schema) *seed.Database {
	b.Helper()
	db, err := seed.NewMemory(sch)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// ---- E1: figures 1+2 — object and relationship creation under eager
// consistency checking ----

func BenchmarkE1_CreateObject(b *testing.B) {
	db := mustMem(b, seed.Figure2Schema())
	defer db.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.CreateObject("Data", fmt.Sprintf("Obj%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_CreateSubObject(b *testing.B) {
	db := mustMem(b, seed.Figure2Schema())
	defer db.Close()
	root, _ := db.CreateObject("Data", "Root")
	text, _ := db.CreateSubObject(root, "Text")
	body, _ := db.CreateSubObject(text, "Body")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.CreateValueObject(body, "Keywords", seed.NewString("k")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_CreateRelationship(b *testing.B) {
	db := mustMem(b, seed.Figure2Schema())
	defer db.Close()
	action, _ := db.CreateObject("Action", "A")
	ids := make([]seed.ID, b.N)
	for i := range ids {
		ids[i], _ = db.CreateObject("Data", fmt.Sprintf("D%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.CreateRelationship("Read", map[string]seed.ID{"from": ids[i], "by": action}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_Figure1Build regenerates the complete figure 1 structure per
// iteration.
func BenchmarkE1_Figure1Build(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := mustMem(b, seed.Figure2Schema())
		alarms, _ := db.CreateObject("Data", "Alarms")
		handler, _ := db.CreateObject("Action", "AlarmHandler")
		_, _ = db.CreateRelationship("Read", map[string]seed.ID{"from": alarms, "by": handler})
		text, _ := db.CreateSubObject(alarms, "Text")
		body, _ := db.CreateSubObject(text, "Body")
		_, _ = db.CreateValueObject(text, "Selector", seed.NewString("Representation"))
		_, _ = db.CreateValueObject(body, "Keywords", seed.NewString("Alarmhandling"))
		_, _ = db.CreateValueObject(body, "Keywords", seed.NewString("Display"))
		db.Close()
	}
}

// ---- E2: figure 3 — re-classification within generalization hierarchies ----

func BenchmarkE2_Reclassify(b *testing.B) {
	db := mustMem(b, seed.Figure3Schema())
	defer db.Close()
	id, _ := db.CreateObject("Thing", "X")
	chain := []string{"Data", "OutputData", "Data", "Thing"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Reclassify(id, chain[i%len(chain)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_RefinementWalk performs the paper's full vague-to-precise
// walk per iteration: Thing -> Data -> OutputData with Access -> Write.
func BenchmarkE2_RefinementWalk(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := mustMem(b, seed.Figure3Schema())
		alarms, _ := db.CreateObject("Thing", "Alarms")
		sensor, _ := db.CreateObject("Action", "Sensor")
		_ = db.Reclassify(alarms, "Data")
		acc, _ := db.CreateRelationship("Access", map[string]seed.ID{"from": alarms, "by": sensor})
		_ = db.Reclassify(alarms, "OutputData")
		_ = db.Reclassify(acc, "Write")
		_, _ = db.CreateValueObject(acc, "NumberOfWrites", seed.NewInteger(2))
		db.Close()
	}
}

// BenchmarkE2_ReclassifyWithRels measures how re-classification cost grows
// with the number of relationships that must be re-validated.
func BenchmarkE2_ReclassifyWithRels(b *testing.B) {
	for _, rels := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("rels=%d", rels), func(b *testing.B) {
			db := mustMem(b, seed.Figure3Schema())
			defer db.Close()
			id, _ := db.CreateObject("Data", "X")
			for i := 0; i < rels; i++ {
				a, _ := db.CreateObject("Action", fmt.Sprintf("A%d", i))
				_, _ = db.CreateRelationship("Access", map[string]seed.ID{"from": id, "by": a})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Reclassify(id, "OutputData"); err != nil {
					b.Fatal(err)
				}
				if err := db.Reclassify(id, "Data"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E3: figure 4 — version creation and view construction ----

// populate fills a database with size objects carrying a description each.
func populate(b *testing.B, db *seed.Database, size int) []seed.ID {
	b.Helper()
	ids := make([]seed.ID, size)
	for i := 0; i < size; i++ {
		id, err := db.CreateObject("Data", fmt.Sprintf("Obj%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.CreateValueObject(id, "Description", seed.NewString("d")); err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func BenchmarkE3_SaveVersion(b *testing.B) {
	for _, size := range []int{100, 1000} {
		for _, changed := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("db=%d/changed=%d", size, changed), func(b *testing.B) {
				db := mustMem(b, seed.Figure3Schema())
				defer db.Close()
				ids := populate(b, db, size)
				if _, err := db.SaveVersion("base"); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					for j := 0; j < changed; j++ {
						obj := ids[(i*changed+j)%size]
						d, err := db.ResolvePath(fmt.Sprintf("Obj%d.Description", (i*changed+j)%size))
						if err != nil {
							b.Fatal(err)
						}
						_ = obj
						if err := db.SetValue(d, seed.NewString(fmt.Sprintf("v%d", i))); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
					if _, err := db.SaveVersion("bench"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkE3_VersionView(b *testing.B) {
	for _, versions := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("chain=%d", versions), func(b *testing.B) {
			db := mustMem(b, seed.Figure3Schema())
			defer db.Close()
			populate(b, db, 200)
			var last seed.VersionNumber
			for i := 0; i < versions; i++ {
				d, _ := db.ResolvePath(fmt.Sprintf("Obj%d.Description", i%200))
				_ = db.SetValue(d, seed.NewString(fmt.Sprintf("v%d", i)))
				num, err := db.SaveVersion("step")
				if err != nil {
					b.Fatal(err)
				}
				last = num
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.VersionView(last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE3_SelectVersion(b *testing.B) {
	db := mustMem(b, seed.Figure3Schema())
	defer db.Close()
	populate(b, db, 500)
	v1, err := db.SaveVersion("base")
	if err != nil {
		b.Fatal(err)
	}
	d, _ := db.ResolvePath("Obj0.Description")
	_ = db.SetValue(d, seed.NewString("tip"))
	v2, err := db.SaveVersion("tip")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		num := v1
		if i%2 == 1 {
			num = v2
		}
		if err := db.SelectVersion(num); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4: figure 5 — pattern splicing and propagation ----

func BenchmarkE4_SplicedView(b *testing.B) {
	for _, inheritors := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("inheritors=%d", inheritors), func(b *testing.B) {
			db := mustMem(b, seed.Figure3Schema())
			defer db.Close()
			common, _ := db.CreateObject("Data", "Common")
			po, _ := db.CreatePatternObject("Action", "PO")
			_, _ = db.CreateRelationship("Access", map[string]seed.ID{"from": common, "by": po})
			_, _ = db.CreateValueObject(po, "Description", seed.NewString("shared"))
			fam := db.NewVariantFamily(po)
			first := seed.NoID
			for i := 0; i < inheritors; i++ {
				id, err := fam.AddVariant("Action", fmt.Sprintf("V%d", i))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					first = id
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Each mutation invalidates the cached splice; the read
				// forces a fresh splice over all inheritors.
				if _, err := db.CreateObject("Data", fmt.Sprintf("bump%d", i)); err != nil {
					b.Fatal(err)
				}
				if got := len(db.View().Children(first, "Description")); got != 1 {
					b.Fatalf("children = %d", got)
				}
			}
		})
	}
}

func BenchmarkE4_PatternUpdatePropagation(b *testing.B) {
	for _, inheritors := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("inheritors=%d", inheritors), func(b *testing.B) {
			db := mustMem(b, seed.Figure3Schema())
			defer db.Close()
			po, _ := db.CreatePatternObject("Action", "PO")
			desc, _ := db.CreateValueObject(po, "Description", seed.NewString("v"))
			fam := db.NewVariantFamily(po)
			for i := 0; i < inheritors; i++ {
				if _, err := fam.AddVariant("Action", fmt.Sprintf("V%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Updating the pattern re-validates every inheritor context.
				if err := db.SetValue(desc, seed.NewString(fmt.Sprintf("v%d", i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E5: SPADES on SEED vs. direct data structures ----

func e5Workload() bench.SpadesWorkload {
	return bench.SpadesWorkload{Actions: 40, Data: 60, Flows: 150, Lookups: 400, Describes: 60}
}

func BenchmarkE5_SPADES_on_SEED(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := mustMem(b, seed.Figure3Schema())
		if _, err := bench.RunSpades(spades.NewProject(db), e5Workload()); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

func BenchmarkE5_SPADES_on_Baseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSpades(baseline.New(), e5Workload()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A1 ablation: delta versions (the paper's design) vs. full copies ----

func benchSnapshotMode(b *testing.B, mode seed.SnapshotMode) {
	db, err := seed.NewMemory(seed.Figure3Schema())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.SetSnapshotMode(mode)
	populate(b, db, 1000)
	if _, err := db.SaveVersion("base"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, _ := db.ResolvePath(fmt.Sprintf("Obj%d.Description", i%1000))
		_ = db.SetValue(d, seed.NewString(fmt.Sprintf("v%d", i)))
		b.StartTimer()
		if _, err := db.SaveVersion("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SnapshotMode_Delta(b *testing.B) {
	benchSnapshotMode(b, seed.DeltaSnapshots)
}

func BenchmarkAblation_SnapshotMode_Full(b *testing.B) {
	benchSnapshotMode(b, seed.FullSnapshots)
}

// ---- A2 ablation: eager per-update checking vs. deferred full recheck ----

func BenchmarkAblation_Consistency_EagerPerOp(b *testing.B) {
	// The eager cost is simply the cost of the checked operation; this
	// bench measures N checked creations.
	db := mustMem(b, seed.Figure3Schema())
	defer db.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.CreateObject("Data", fmt.Sprintf("O%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Consistency_DeferredFullRecheck(b *testing.B) {
	// The deferred alternative re-validates the whole database; measured
	// against database size.
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("db=%d", size), func(b *testing.B) {
			db := mustMem(b, seed.Figure3Schema())
			defer db.Close()
			populate(b, db, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.ValidateAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- A3 ablation: spliced pattern reads (computed) vs. cached view ----

func BenchmarkAblation_Pattern_FreshSplice(b *testing.B) {
	db := mustMem(b, seed.Figure3Schema())
	defer db.Close()
	po, _ := db.CreatePatternObject("Action", "PO")
	_, _ = db.CreateValueObject(po, "Description", seed.NewString("x"))
	fam := db.NewVariantFamily(po)
	for i := 0; i < 50; i++ {
		if _, err := fam.AddVariant("Action", fmt.Sprintf("V%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	desc, _ := db.ResolvePathRaw("PO.Description")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A write invalidates the cache, so every View() splices afresh.
		if err := db.SetValue(desc, seed.NewString(fmt.Sprintf("x%d", i))); err != nil {
			b.Fatal(err)
		}
		v := db.View()
		if got := len(v.Children(seed.ID(po), "")); got == 0 {
			_ = got
		}
	}
}

func BenchmarkAblation_Pattern_CachedView(b *testing.B) {
	db := mustMem(b, seed.Figure3Schema())
	defer db.Close()
	po, _ := db.CreatePatternObject("Action", "PO")
	_, _ = db.CreateValueObject(po, "Description", seed.NewString("x"))
	fam := db.NewVariantFamily(po)
	var first seed.ID
	for i := 0; i < 50; i++ {
		id, err := fam.AddVariant("Action", fmt.Sprintf("V%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first = id
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// No mutations: View() returns the cached splice.
		v := db.View()
		if got := len(v.Children(first, "Description")); got != 1 {
			b.Fatalf("children = %d", got)
		}
	}
}

// ---- Infrastructure benches: storage and query ----

func BenchmarkStorage_JournaledCreate(b *testing.B) {
	dir := b.TempDir()
	db, err := seed.Open(dir, seed.Options{Schema: seed.Figure2Schema()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.CreateObject("Data", fmt.Sprintf("O%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_ClassSelection(b *testing.B) {
	db := mustMem(b, seed.Figure3Schema())
	defer db.Close()
	populate(b, db, 1000)
	v := db.View()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := seed.NewQuery().Class("Data", true).Run(v)
		if err != nil || len(ids) != 1000 {
			b.Fatalf("%d ids, %v", len(ids), err)
		}
	}
}

func BenchmarkQuery_ValuePredicate(b *testing.B) {
	db := mustMem(b, seed.Figure3Schema())
	defer db.Close()
	populate(b, db, 1000)
	v := db.View()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := seed.NewQuery().Where("Description", seed.Eq, seed.NewString("d")).Run(v)
		if err != nil || len(ids) != 1000 {
			b.Fatalf("%d ids, %v", len(ids), err)
		}
	}
}

var benchSink time.Duration

// BenchmarkE5_SlowdownFactor reports the measured slowdown as a custom
// metric so the bench output itself documents the paper's shape.
func BenchmarkE5_SlowdownFactor(b *testing.B) {
	w := e5Workload()
	for i := 0; i < b.N; i++ {
		baseT, err := bench.RunSpades(baseline.New(), w)
		if err != nil {
			b.Fatal(err)
		}
		db := mustMem(b, seed.Figure3Schema())
		seedT, err := bench.RunSpades(spades.NewProject(db), w)
		db.Close()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = seedT
		b.ReportMetric(float64(seedT)/float64(baseT), "slowdown-x")
	}
}
