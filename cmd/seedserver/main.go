// Command seedserver runs the central SEED server of the two-level
// multi-user scheme over a file-backed database.
//
// Usage:
//
//	seedserver -dir /var/lib/seed -addr 127.0.0.1:7544 [-schema schema.sdl]
//	           [-segment-size 4194304] [-sync request|group]
//	           [-idle-timeout 5m] [-write-timeout 30s]
//
// A fresh directory requires -schema (an SDL file); an existing database
// loads its schema from storage. -segment-size caps one write-ahead-log
// segment file; -sync group makes every operation durable before it is
// acknowledged (the database serializes operations, so this costs one
// fsync per operation; fsync coalescing across concurrent committers
// happens at the storage layer). -idle-timeout disconnects clients that
// send nothing for the given duration, releasing their locks and aborting
// their in-flight check-ins; it defaults to off because a checked-out
// client editing locally is legitimately silent for long stretches —
// enable it only where clients reconnect and re-checkout on error.
// -write-timeout bounds how long one response frame may take to reach a
// client before the connection is reaped — size it generously for slow
// links, since a near-limit 8 MiB frame needs the whole bound. Zero
// (the default) disables either; both deadlines preserve pre-v2 behavior
// unless explicitly armed.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
	"repro/seed"
)

func main() {
	dir := flag.String("dir", "seed-data", "database directory")
	addr := flag.String("addr", "127.0.0.1:7544", "listen address")
	schemaFile := flag.String("schema", "", "SDL schema file (required for a fresh database)")
	segmentSize := flag.Int64("segment-size", 0, "WAL segment size cap in bytes (0 = storage default)")
	syncMode := flag.String("sync", "request", "durability policy: request (fsync on save points) or group (group-committed fsync per operation)")
	idleTimeout := flag.Duration("idle-timeout", 0, "disconnect a client after this silence, releasing its locks and in-flight check-in (0 disables; note a checked-out client editing locally is legitimately silent, so enable only with clients that reconnect and re-checkout on error)")
	writeTimeout := flag.Duration("write-timeout", 0, "maximum time one response frame may take to reach a client before the connection is reaped (0 disables; bound one frame's transfer, so size it to the slowest link expected to carry an 8 MiB frame)")
	flag.Parse()

	opts := seed.Options{CompactAfter: 4 << 20, SegmentSize: *segmentSize}
	switch *syncMode {
	case "request":
		opts.SyncPolicy = seed.SyncOnRequest
	case "group":
		opts.SyncPolicy = seed.SyncGroupCommit
	default:
		log.Fatalf("unknown -sync policy %q (want request or group)", *syncMode)
	}
	if *schemaFile != "" {
		text, err := os.ReadFile(*schemaFile)
		if err != nil {
			log.Fatalf("reading schema: %v", err)
		}
		sch, err := seed.ParseSDL(string(text))
		if err != nil {
			log.Fatalf("parsing schema: %v", err)
		}
		opts.Schema = sch
	}
	db, err := seed.Open(*dir, opts)
	if err != nil {
		log.Fatalf("opening database: %v", err)
	}
	defer db.Close()

	srv := server.New(db)
	srv.SetLogger(log.Printf)
	srv.SetTimeouts(*idleTimeout, *writeTimeout)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	log.Printf("seedserver: serving %s on %s", *dir, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("seedserver: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
