// Command seedserver runs the central SEED server of the two-level
// multi-user scheme over a file-backed database.
//
// Usage:
//
//	seedserver -dir /var/lib/seed -addr 127.0.0.1:7544 [-schema schema.sdl]
//	           [-segment-size 4194304] [-sync request|group]
//
// A fresh directory requires -schema (an SDL file); an existing database
// loads its schema from storage. -segment-size caps one write-ahead-log
// segment file; -sync group makes every operation durable before it is
// acknowledged (the database serializes operations, so this costs one
// fsync per operation; fsync coalescing across concurrent committers
// happens at the storage layer).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
	"repro/seed"
)

func main() {
	dir := flag.String("dir", "seed-data", "database directory")
	addr := flag.String("addr", "127.0.0.1:7544", "listen address")
	schemaFile := flag.String("schema", "", "SDL schema file (required for a fresh database)")
	segmentSize := flag.Int64("segment-size", 0, "WAL segment size cap in bytes (0 = storage default)")
	syncMode := flag.String("sync", "request", "durability policy: request (fsync on save points) or group (group-committed fsync per operation)")
	flag.Parse()

	opts := seed.Options{CompactAfter: 4 << 20, SegmentSize: *segmentSize}
	switch *syncMode {
	case "request":
		opts.SyncPolicy = seed.SyncOnRequest
	case "group":
		opts.SyncPolicy = seed.SyncGroupCommit
	default:
		log.Fatalf("unknown -sync policy %q (want request or group)", *syncMode)
	}
	if *schemaFile != "" {
		text, err := os.ReadFile(*schemaFile)
		if err != nil {
			log.Fatalf("reading schema: %v", err)
		}
		sch, err := seed.ParseSDL(string(text))
		if err != nil {
			log.Fatalf("parsing schema: %v", err)
		}
		opts.Schema = sch
	}
	db, err := seed.Open(*dir, opts)
	if err != nil {
		log.Fatalf("opening database: %v", err)
	}
	defer db.Close()

	srv := server.New(db)
	srv.SetLogger(log.Printf)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	log.Printf("seedserver: serving %s on %s", *dir, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("seedserver: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
