// Command seedserver runs the central SEED server of the two-level
// multi-user scheme over a file-backed database.
//
// Usage:
//
//	seedserver -dir /var/lib/seed -addr 127.0.0.1:7544 [-schema schema.sdl]
//
// A fresh directory requires -schema (an SDL file); an existing database
// loads its schema from storage.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
	"repro/seed"
)

func main() {
	dir := flag.String("dir", "seed-data", "database directory")
	addr := flag.String("addr", "127.0.0.1:7544", "listen address")
	schemaFile := flag.String("schema", "", "SDL schema file (required for a fresh database)")
	flag.Parse()

	opts := seed.Options{CompactAfter: 4 << 20}
	if *schemaFile != "" {
		text, err := os.ReadFile(*schemaFile)
		if err != nil {
			log.Fatalf("reading schema: %v", err)
		}
		sch, err := seed.ParseSDL(string(text))
		if err != nil {
			log.Fatalf("parsing schema: %v", err)
		}
		opts.Schema = sch
	}
	db, err := seed.Open(*dir, opts)
	if err != nil {
		log.Fatalf("opening database: %v", err)
	}
	defer db.Close()

	srv := server.New(db)
	srv.SetLogger(log.Printf)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	log.Printf("seedserver: serving %s on %s", *dir, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("seedserver: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
