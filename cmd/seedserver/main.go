// Command seedserver runs the central SEED server of the two-level
// multi-user scheme over a file-backed database.
//
// Usage:
//
//	seedserver -dir /var/lib/seed -addr 127.0.0.1:7544 [-schema schema.sdl]
//	           [-segment-size 4194304] [-sync request|group]
//	           [-idle-timeout 5m] [-write-timeout 30s]
//	           [-max-inflight 256] [-queue-depth 64]
//	           [-metrics-addr 127.0.0.1:7545] [-drain-timeout 30s]
//	           [-log-format text|json] [-follow 127.0.0.1:7544]
//	           [-attr-index CLASS:PATH[:hash|ordered]]...
//
// A fresh directory requires -schema (an SDL file); an existing database
// loads its schema from storage. -segment-size caps one write-ahead-log
// segment file; -sync group makes every operation durable before it is
// acknowledged (the database serializes operations, so this costs one
// fsync per operation; fsync coalescing across concurrent committers
// happens at the storage layer). -idle-timeout disconnects clients that
// send nothing for the given duration, releasing their locks and aborting
// their in-flight check-ins; it defaults to off because a checked-out
// client editing locally is legitimately silent for long stretches —
// enable it only where clients reconnect and re-checkout on error.
// -write-timeout bounds how long one response frame may take to reach a
// client before the connection is reaped — size it generously for slow
// links, since a near-limit 8 MiB frame needs the whole bound. Zero
// (the default) disables either; both deadlines preserve pre-v2 behavior
// unless explicitly armed.
//
// Overload protection: -max-inflight caps the requests executing at once
// across all connections, and -queue-depth bounds how many more may wait
// for a slot; everything beyond both is shed immediately with the
// retryable "overloaded" wire code (clients using client.Retry back off
// and come back). -max-inflight 0 (the default) disables the gate.
//
// Observability: -metrics-addr starts a side HTTP listener serving
// /metrics (Prometheus text format: per-operation latency histograms,
// response-code counters, connection/lock/queue/WAL gauges), /healthz
// (liveness), and /readyz (flips to 503 the moment a drain begins, so a
// load balancer stops routing before the listener goes away). Empty (the
// default) disables it. -log-format selects the structured log rendering:
// text (key=value lines) or json (one object per line).
//
// Replication: -follow turns the process into a read-only follower of the
// primary at the given address. The follower keeps an in-memory replica
// converged by subscribing to the primary's write-ahead log (snapshot +
// sealed segments + live records), serves the whole retrieval surface
// (get, list, query, versions, completeness, stats) from its own pinned
// snapshots at replication lag, and refuses every mutation with the
// retryable "not-primary" wire code — clients redial the primary
// (client.Classify reports ClassRedial). The listener starts only after
// the first complete bootstrap, so a follower that accepts connections is
// serving real state; dropped primary connections reconnect with backoff
// and resync without interrupting reads. -dir, -schema, -segment-size and
// -sync are ignored in follower mode (the replica is not durable — it
// re-bootstraps from the primary on restart). OpStats reports the
// follower's applied generation and observed lag.
//
// Query acceleration: each -attr-index (repeatable) registers an attribute
// index on a class and role path ("Tool.Defect:Text.Selector" indexes the
// Selector value below Text sub-objects of Defect roots); the cost-based
// planner then answers equality — and, for ordered indexes, range —
// predicates on that path from the index instead of scanning. Indexes are
// in-memory acceleration state, registered again from the flags on every
// start; followers register them after the first bootstrap and keep them
// across resyncs.
//
// Shutdown: on SIGTERM or SIGINT the server drains gracefully — it stops
// accepting connections, refuses new mutations with the retryable
// "shutting-down" code, waits up to -drain-timeout for in-flight
// check-ins to reach group-commit durability, seals the write-ahead log's
// tail segment, closes the remaining connections, and exits 0. A second
// signal, or the timeout, forces immediate teardown.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/seed"
)

func main() {
	dir := flag.String("dir", "seed-data", "database directory")
	addr := flag.String("addr", "127.0.0.1:7544", "listen address")
	schemaFile := flag.String("schema", "", "SDL schema file (required for a fresh database)")
	segmentSize := flag.Int64("segment-size", 0, "WAL segment size cap in bytes (0 = storage default)")
	syncMode := flag.String("sync", "request", "durability policy: request (fsync on save points) or group (group-committed fsync per operation)")
	idleTimeout := flag.Duration("idle-timeout", 0, "disconnect a client after this silence, releasing its locks and in-flight check-in (0 disables; note a checked-out client editing locally is legitimately silent, so enable only with clients that reconnect and re-checkout on error)")
	writeTimeout := flag.Duration("write-timeout", 0, "maximum time one response frame may take to reach a client before the connection is reaped (0 disables; bound one frame's transfer, so size it to the slowest link expected to carry an 8 MiB frame)")
	maxInflight := flag.Int("max-inflight", 0, "maximum requests executing at once across all connections; excess waits in the admission queue or is shed with the retryable overloaded code (0 disables the gate)")
	queueDepth := flag.Int("queue-depth", 64, "requests allowed to wait for an execution slot when -max-inflight is reached; beyond this they are shed immediately")
	metricsAddr := flag.String("metrics-addr", "", "side HTTP listen address for /metrics, /healthz, /readyz (empty disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT, how long to wait for in-flight check-ins to reach durability before forcing teardown")
	logFormat := flag.String("log-format", server.LogText, "structured log rendering: text (key=value) or json (one object per line)")
	follow := flag.String("follow", "", "primary address to replicate from: serve as a read-only follower (ignores -dir/-schema/-segment-size/-sync; mutations are refused with the retryable not-primary code)")
	var attrIndexes []seed.AttrSpec
	flag.Func("attr-index", "register an attribute index CLASS:PATH[:hash|ordered] at startup so predicate queries on that path run index-backed (repeatable; ordered is the default and also answers range predicates)", func(s string) error {
		spec, err := parseAttrIndex(s)
		if err != nil {
			return err
		}
		attrIndexes = append(attrIndexes, spec)
		return nil
	})
	flag.Parse()

	var db *seed.Database
	var fol *server.Follower
	folCtx, folStop := context.WithCancel(context.Background())
	defer folStop()
	if *follow != "" {
		db = seed.NewFollower()
		fol = server.NewFollower(db, *follow)
		fol.SetLogger(log.Printf)
		go fol.Run(folCtx)
	} else {
		opts := seed.Options{CompactAfter: 4 << 20, SegmentSize: *segmentSize}
		switch *syncMode {
		case "request":
			opts.SyncPolicy = seed.SyncOnRequest
		case "group":
			opts.SyncPolicy = seed.SyncGroupCommit
		default:
			log.Fatalf("unknown -sync policy %q (want request or group)", *syncMode)
		}
		if *schemaFile != "" {
			text, err := os.ReadFile(*schemaFile)
			if err != nil {
				log.Fatalf("reading schema: %v", err)
			}
			sch, err := seed.ParseSDL(string(text))
			if err != nil {
				log.Fatalf("parsing schema: %v", err)
			}
			opts.Schema = sch
		}
		var err error
		db, err = seed.Open(*dir, opts)
		if err != nil {
			log.Fatalf("opening database: %v", err)
		}
		// Indexes are in-memory acceleration, not persistent state — a
		// restart registers them again from the flags.
		for _, spec := range attrIndexes {
			if err := db.CreateAttrIndex(spec.Key.Class, spec.Key.Path, spec.Kind); err != nil {
				log.Fatalf("registering attribute index %s: %v", spec.Key, err)
			}
		}
	}

	srv := server.New(db)
	srv.SetLogger(log.Printf)
	if err := srv.SetLogFormat(*logFormat); err != nil {
		log.Fatalf("%v", err)
	}
	srv.SetTimeouts(*idleTimeout, *writeTimeout)
	srv.SetAdmission(*maxInflight, *queueDepth, 0)
	if fol != nil {
		// A follower listens only once it serves real state: the first
		// bootstrap must complete before the first client connects. A
		// signal during the wait aborts the boot.
		log.Printf("seedserver: following %s, waiting for first catch-up", *follow)
		wctx, wstop := signal.NotifyContext(folCtx, os.Interrupt, syscall.SIGTERM)
		err := fol.WaitReady(wctx)
		wstop()
		if err != nil {
			log.Fatalf("follower bootstrap: %v", err)
		}
		srv.SetFollower(true)
		srv.SetReplicaStatus(fol.Status)
		// Followers register indexes after the first bootstrap, once the
		// replicated schema (and its classes) exists to validate against.
		for _, spec := range attrIndexes {
			if err := db.CreateAttrIndex(spec.Key.Class, spec.Key.Path, spec.Kind); err != nil {
				log.Fatalf("registering attribute index %s: %v", spec.Key, err)
			}
		}
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	if fol != nil {
		log.Printf("seedserver: follower of %s serving on %s", *follow, bound)
	} else {
		log.Printf("seedserver: serving %s on %s", *dir, bound)
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		log.Printf("seedserver: metrics on %s", mln.Addr().String())
		go func() {
			// The metrics plane dies with the process; /readyz keeps
			// answering through the drain so orchestrators see the flip.
			if err := http.Serve(mln, srv.MetricsHandler()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("seedserver: draining (timeout %s; signal again to force)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig // a second signal forces immediate teardown
		cancel()
	}()
	err = srv.Shutdown(ctx)
	cancel()
	if err != nil {
		log.Printf("drain: %v", err)
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
	folStop() // stop replicating before the replica closes
	if err := db.Close(); err != nil {
		log.Fatalf("closing database: %v", err)
	}
	log.Printf("seedserver: exit")
}

// parseAttrIndex parses one -attr-index value: CLASS:PATH[:hash|ordered].
func parseAttrIndex(s string) (seed.AttrSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
		return seed.AttrSpec{}, fmt.Errorf("want CLASS:PATH[:hash|ordered], got %q", s)
	}
	kind := seed.AttrOrdered
	if len(parts) == 3 {
		var err error
		kind, err = seed.ParseAttrKind(parts[2])
		if err != nil {
			return seed.AttrSpec{}, err
		}
	}
	return seed.AttrSpec{Key: seed.AttrKey{Class: parts[0], Path: parts[1]}, Kind: kind}, nil
}
