package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
)

// TestLifecycle exercises the binary end to end: start with ephemeral wire
// and metrics ports, confirm /healthz and /readyz answer, run live client
// traffic, SIGTERM mid-traffic, and require a clean exit-0 drain within the
// configured timeout — with /readyz having flipped to 503 on the way down.
func TestLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "seedserver")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building seedserver: %v\n%s", err, out)
	}
	schema := filepath.Join(t.TempDir(), "schema.sdl")
	if err := os.WriteFile(schema, []byte("schema Life version 1\nclass Doc {\n    Title: STRING 0..1\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin,
		"-dir", filepath.Join(t.TempDir(), "db"),
		"-addr", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
		"-schema", schema,
		"-sync", "group",
		"-drain-timeout", "10s",
		"-log-format", "text",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// The binary logs its bound addresses; scrape both off stderr.
	serveRe := regexp.MustCompile(`serving .* on (\S+)`)
	metricsRe := regexp.MustCompile(`metrics on (\S+)`)
	addrCh := make(chan [2]string, 1)
	var logMu sync.Mutex
	var logText strings.Builder
	go func() {
		sc := bufio.NewScanner(stderr)
		var wireAddr, metricsAddr string
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logText.WriteString(line + "\n")
			logMu.Unlock()
			if m := serveRe.FindStringSubmatch(line); m != nil {
				wireAddr = m[1]
			}
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				metricsAddr = m[1]
			}
			if wireAddr != "" && metricsAddr != "" {
				select {
				case addrCh <- [2]string{wireAddr, metricsAddr}:
				default:
				}
			}
		}
	}()
	var wireAddr, metricsAddr string
	select {
	case a := <-addrCh:
		wireAddr, metricsAddr = a[0], a[1]
	case <-time.After(15 * time.Second):
		logMu.Lock()
		defer logMu.Unlock()
		t.Fatalf("server never logged its addresses; log so far:\n%s", logText.String())
	}

	if body := httpGet(t, "http://"+metricsAddr+"/healthz", http.StatusOK); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}
	if body := httpGet(t, "http://"+metricsAddr+"/readyz", http.StatusOK); !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %q", body)
	}
	if body := httpGet(t, "http://"+metricsAddr+"/metrics", http.StatusOK); !strings.Contains(body, "seed_up 1") {
		t.Errorf("/metrics missing seed_up:\n%.400s", body)
	}

	// Live traffic: writers check objects in while the drain lands on them.
	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for i := 0; i < 3; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			c, err := client.Dial(wireAddr)
			if err != nil {
				return
			}
			defer c.Close()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				ws, err := c.Checkout()
				if err != nil {
					return // drain refusal or teardown: both expected
				}
				ws.CreateObject("Doc", fmt.Sprintf("Doc%dn%d", i, n))
				if err := ws.Commit(); err != nil {
					return
				}
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// /readyz must flip to 503 while the process is still draining.
	flipped := false
	for i := 0; i < 200; i++ {
		resp, err := http.Get("http://" + metricsAddr + "/readyz")
		if err != nil {
			break // metrics listener died with the process: drain finished
		}
		code := resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			flipped = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			logMu.Lock()
			defer logMu.Unlock()
			t.Fatalf("seedserver exited non-zero after SIGTERM: %v\nlog:\n%s", err, logText.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("seedserver did not exit within the drain window")
	}
	close(stop)
	traffic.Wait()

	if !flipped {
		// The drain can complete faster than the first probe; only fail if
		// the log shows the drain never happened at all.
		logMu.Lock()
		text := logText.String()
		logMu.Unlock()
		if !strings.Contains(text, "drain-begin") {
			t.Errorf("no readyz flip observed and no drain-begin logged:\n%s", text)
		}
	}
}

func httpGet(t *testing.T, url string, want int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s = %d, want %d (body %q)", url, resp.StatusCode, want, body)
	}
	return string(body)
}
