// Command seedschemas regenerates the SDL schema files shipped under
// schemas/ from the programmatic constructors in internal/schema, keeping
// them in sync with the code (internal/sdl.TestShippedSchemaFiles enforces
// this).
//
// Usage:
//
//	go run ./cmd/seedschemas [-dir schemas]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/schema"
	"repro/internal/sdl"
)

func main() {
	dir := flag.String("dir", "schemas", "output directory for the SDL files")
	flag.Parse()

	files := []struct {
		name  string
		build func() *schema.Schema
	}{
		{"figure2.sdl", schema.Figure2},
		{"figure3.sdl", schema.Figure3},
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatalf("seedschemas: %v", err)
	}
	for _, f := range files {
		path := filepath.Join(*dir, f.name)
		text := sdl.Render(f.build())
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			log.Fatalf("seedschemas: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(text))
	}
}
