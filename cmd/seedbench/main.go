// Command seedbench runs the reproduction experiments (one per evaluation
// artifact of the paper; see DESIGN.md section 5) and prints their reports.
//
// Usage:
//
//	seedbench                       # run everything
//	seedbench -exp e3               # run one experiment
//	seedbench -list                 # list experiments (the authoritative set)
//	seedbench -exp e8 -json BENCH_E8.json  # export a measurement experiment
//	seedbench -short                # reduced workloads (CI smoke)
//
// E1-E5 reproduce the paper's evaluation artifacts; E6 measures the
// storage engine's group-commit pipeline, E7 the snapshot-read/check-in
// concurrency engine, E8 the copy-on-write snapshot generations plus the
// class-indexed query path beyond the paper, E9 the concurrent
// lock-scoped check-in path against the old serialized write gate, E10
// the pipelined v2 wire protocol with server-side queries, E11 the
// follower-replication read scale-out with its lag and convergence
// differential, E12 the columnar item store against the map-backed
// ablation, E13 the attribute indexes and cost-based planner against the
// forced linear scan, and E14 the production-hardening fault harness
// (overload shedding, chaos clients, graceful drain). With -json, the
// machine-readable data of the selected measurement experiment (e8, or
// e9/e10/e11/e12/e13/e14 when selected with -exp)
// is written out so the perf trajectory is tracked across PRs. The experiment list below is the
// single source of truth: -list and the -exp flag help enumerate it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

var experiments = []struct {
	id, doc string
	run     func() *bench.Result
}{
	{"e1", "figures 1+2: sample structure under the sample schema", bench.E1},
	{"e2", "figure 3: generalization, vague data, refinement walk", bench.E2},
	{"e3", "figure 4: versions, views, delta storage, alternatives", bench.E3},
	{"e4", "figure 5: variants defined by means of patterns", bench.E4},
	{"e5", "SPADES on SEED vs. direct data structures", bench.E5},
	{"e6", "storage: group commit vs per-record fsync", bench.E6},
	{"e7", "concurrency: parallel snapshot reads vs serialized check-ins", bench.E7},
	{"e8", "snapshots: COW generations and the class-indexed read path", nil},     // wired in main
	{"e9", "check-ins: lock-scoped concurrency vs the global write gate", nil},    // wired in main
	{"e10", "wire v2: pipelined frames and server-side queries", nil},             // wired in main
	{"e11", "replication: follower read scale-out, lag, convergence", nil},        // wired in main
	{"e12", "columnar store: bytes/item, freeze and query latency vs map", nil},   // wired in main
	{"e13", "planner: attribute-indexed predicates vs forced linear scan", nil},   // wired in main
	{"e14", "hardening: overload shedding, fault injection, graceful drain", nil}, // wired in main
}

// experimentIDs enumerates the registered experiments, so the flag help and
// the -list output can never drift from the actual set.
func experimentIDs() string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	return strings.Join(ids, ", ")
}

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+experimentIDs()+", or all)")
	list := flag.Bool("list", false, "list experiments")
	short := flag.Bool("short", false, "reduced workloads (CI smoke)")
	jsonPath := flag.String("json", "", "write the selected measurement experiment's machine-readable data to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.doc)
		}
		return
	}

	e8Workload := bench.DefaultChurnWorkload
	e9Workload := bench.DefaultCheckinWorkload
	e10Workload := bench.DefaultPipelineWorkload
	e11Workload := bench.DefaultReplicaWorkload
	e12Workload := bench.DefaultColumnarWorkload
	e13Workload := bench.DefaultPredicateWorkload
	e14Workload := bench.DefaultFaultWorkload
	if *short {
		e8Workload = bench.ShortChurnWorkload
		e9Workload = bench.ShortCheckinWorkload
		e10Workload = bench.ShortPipelineWorkload
		e11Workload = bench.ShortReplicaWorkload
		e12Workload = bench.ShortColumnarWorkload
		e13Workload = bench.ShortPredicateWorkload
		e14Workload = bench.ShortFaultWorkload
	}
	var e8Data *bench.E8Data
	var e9Data *bench.E9Data
	var e10Data *bench.E10Data
	var e11Data *bench.E11Data
	var e12Data *bench.E12Data
	var e13Data *bench.E13Data
	var e14Data *bench.E14Data

	failed := false
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		var r *bench.Result
		switch e.id {
		case "e8":
			r, e8Data = bench.E8Stats(e8Workload)
		case "e9":
			r, e9Data = bench.E9Stats(e9Workload)
		case "e10":
			r, e10Data = bench.E10Stats(e10Workload)
		case "e11":
			r, e11Data = bench.E11Stats(e11Workload)
		case "e12":
			r, e12Data = bench.E12Stats(e12Workload)
		case "e13":
			r, e13Data = bench.E13Stats(e13Workload)
		case "e14":
			r, e14Data = bench.E14Stats(e14Workload)
		default:
			r = e.run()
		}
		fmt.Print(r.String())
		fmt.Println()
		if r.Failed {
			failed = true
		}
	}
	if *jsonPath != "" {
		// -exp e9/e10 exports that experiment's data; everything else keeps
		// the historical behavior of exporting E8.
		var payload any
		switch {
		case strings.EqualFold(*exp, "e9"):
			if e9Data == nil {
				fmt.Fprintf(os.Stderr, "seedbench: -json given but experiment e9 did not run (-exp %s)\n", *exp)
				os.Exit(1)
			}
			payload = e9Data
		case strings.EqualFold(*exp, "e10"):
			if e10Data == nil {
				fmt.Fprintf(os.Stderr, "seedbench: -json given but experiment e10 did not run (-exp %s)\n", *exp)
				os.Exit(1)
			}
			payload = e10Data
		case strings.EqualFold(*exp, "e11"):
			if e11Data == nil {
				fmt.Fprintf(os.Stderr, "seedbench: -json given but experiment e11 did not run (-exp %s)\n", *exp)
				os.Exit(1)
			}
			payload = e11Data
		case strings.EqualFold(*exp, "e12"):
			if e12Data == nil {
				fmt.Fprintf(os.Stderr, "seedbench: -json given but experiment e12 did not run (-exp %s)\n", *exp)
				os.Exit(1)
			}
			payload = e12Data
		case strings.EqualFold(*exp, "e13"):
			if e13Data == nil {
				fmt.Fprintf(os.Stderr, "seedbench: -json given but experiment e13 did not run (-exp %s)\n", *exp)
				os.Exit(1)
			}
			payload = e13Data
		case strings.EqualFold(*exp, "e14"):
			if e14Data == nil {
				fmt.Fprintf(os.Stderr, "seedbench: -json given but experiment e14 did not run (-exp %s)\n", *exp)
				os.Exit(1)
			}
			payload = e14Data
		default:
			if e8Data == nil {
				fmt.Fprintf(os.Stderr, "seedbench: -json given but experiment e8 did not run (-exp %s)\n", *exp)
				os.Exit(1)
			}
			payload = e8Data
		}
		buf, err := json.MarshalIndent(payload, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seedbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "seedbench: some assertions FAILED")
		os.Exit(1)
	}
}
