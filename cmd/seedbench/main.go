// Command seedbench runs the reproduction experiments (one per evaluation
// artifact of the paper; see DESIGN.md section 5) and prints their reports.
//
// Usage:
//
//	seedbench            # run everything
//	seedbench -exp e3    # run one experiment
//	seedbench -list      # list experiments
//
// E1-E5 reproduce the paper's evaluation artifacts; E6 measures the
// storage engine's group-commit pipeline and E7 the snapshot-read/check-in
// concurrency engine beyond the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

var experiments = []struct {
	id, doc string
	run     func() *bench.Result
}{
	{"e1", "figures 1+2: sample structure under the sample schema", bench.E1},
	{"e2", "figure 3: generalization, vague data, refinement walk", bench.E2},
	{"e3", "figure 4: versions, views, delta storage, alternatives", bench.E3},
	{"e4", "figure 5: variants defined by means of patterns", bench.E4},
	{"e5", "SPADES on SEED vs. direct data structures", bench.E5},
	{"e6", "storage: group commit vs per-record fsync", bench.E6},
	{"e7", "concurrency: parallel snapshot reads vs serialized check-ins", bench.E7},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (e1..e7 or all)")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.doc)
		}
		return
	}

	failed := false
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		r := e.run()
		fmt.Print(r.String())
		fmt.Println()
		if r.Failed {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "seedbench: some assertions FAILED")
		os.Exit(1)
	}
}
