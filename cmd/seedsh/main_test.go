package main

import (
	"os"
	"strings"
	"testing"

	"repro/seed"
)

func newShell(t *testing.T) (*shell, func() string) {
	t.Helper()
	db, err := seed.NewMemory(seed.Figure3Schema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	sh := &shell{db: db, out: f}
	return sh, func() string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

func run(t *testing.T, sh *shell, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := sh.exec(l); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
	}
}

func TestShellSession(t *testing.T) {
	sh, output := newShell(t)
	run(t, sh,
		"mk Data Alarms",
		"mk Action Handler",
		"sub Alarms Description alarm display matrix",
		"ln Access from=Alarms by=Handler",
		"ls Data",
		"show Alarms.Description",
		"tree Alarms",
		"save first version",
		"versions",
		"stats",
		"check",
		"history Alarms",
		"schema",
		"help",
	)
	out := output()
	for _, want := range []string{
		"Alarms", "alarm display matrix", "1.0", "first version",
		"objects=3", "Access", "schema Figure3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shell output missing %q", want)
		}
	}
}

func TestShellReclassifyAndRemove(t *testing.T) {
	sh, _ := newShell(t)
	run(t, sh,
		"mk Thing Vague",
		"reclass Vague Data",
		"mk Data Doomed",
		"rm Doomed",
	)
	if _, ok := sh.db.GetObject("Doomed"); ok {
		t.Error("rm did not delete")
	}
	o, _ := sh.db.GetObject("Vague")
	if o.Class.QualifiedName() != "Data" {
		t.Errorf("reclass: class = %s", o.Class.QualifiedName())
	}
}

func TestShellPatterns(t *testing.T) {
	sh, output := newShell(t)
	run(t, sh,
		"mkpattern Action Template",
		"sub Template Description shared text",
		"mk Action Real",
		"inherit Template Real",
		"tree Real",
	)
	if !strings.Contains(output(), "shared text") {
		t.Error("inherited description not shown in tree")
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newShell(t)
	for _, bad := range []string{
		"nonsense",
		"mk",
		"mk Nope X",
		"sub Nothing Description x",
		"set Nothing 5",
		"ln",
		"ln Access from=Missing by=AlsoMissing",
		"rm Missing",
		"select notaversion",
		"show Missing",
		"tree Missing",
	} {
		if err := sh.exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestShellVersionSelect(t *testing.T) {
	sh, _ := newShell(t)
	run(t, sh,
		"mk Action A",
		"save one",
		"mk Action B",
		"save two",
		"select 1.0",
	)
	if _, ok := sh.db.GetObject("B"); ok {
		t.Error("select 1.0 should hide B")
	}
	if _, ok := sh.db.GetObject("A"); !ok {
		t.Error("select 1.0 lost A")
	}
}

func TestShellQuery(t *testing.T) {
	sh, output := newShell(t)
	run(t, sh,
		"mk InputData Sensors",
		"mk OutputData Alarms",
		"mk OutputData Display",
		"mk Action Handler",
		"sub Alarms Description alarm display matrix",
		"ln Write from=Alarms by=Handler",
		"query class Data specs",
		"query class OutputData where Description contains display",
		"query class OutputData follow Write from by",
		"query class Data specs limit 1 offset 1",
		"query name Al*",
	)
	out := output()
	for _, want := range []string{
		"3 of 3 match(es)", // class Data specs: Sensors, Alarms, Display
		"1 of 1 match(es)", // where on Description; also the name glob
		"Handler",          // follow Write lands on the Action
		"1 of 3 match(es)", // paged
	} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}
	for _, bad := range []string{
		"query class",
		"query where Description ~ x",
		"query limit nope",
		"query frobnicate",
		"query follow Write from",
	} {
		if err := sh.exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
