package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/wire"
	"repro/seed"
)

// execRemote dispatches one shell command against a remote seedserver (the
// -addr mode): the retrieval and version surface goes over the wire
// protocol, while local-database editing commands — which would bypass the
// server's checkout discipline — are refused with a pointer at check-out
// based clients.
func (s *shell) execRemote(line string) error {
	args := strings.Fields(line)
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "help":
		s.help()
		fmt.Fprintln(s.out, "\nremote mode: retrieval (ls, query, show, tree, check), save, versions,")
		fmt.Fprintln(s.out, "and stats run against the server; editing commands need a checkout client")
		return nil
	case "ls":
		class := ""
		if len(rest) > 0 {
			class = rest[0]
		}
		names, err := s.remote.List(class)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(s.out, n)
		}
		return nil
	case "query":
		return s.remoteQuery(rest)
	case "show", "tree":
		if len(rest) != 1 {
			return fmt.Errorf("usage: %s <name>", cmd)
		}
		return s.remoteTree(rest[0])
	case "check":
		findings, err := s.remote.Completeness()
		if err != nil {
			return err
		}
		for _, f := range findings {
			fmt.Fprintf(s.out, "item=%d rule=%s %s\n", f.Item, f.Rule, f.Detail)
		}
		return nil
	case "save":
		num, err := s.remote.SaveVersion(strings.Join(rest, " "))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "saved version %s\n", num)
		return nil
	case "versions":
		infos, err := s.remote.Versions()
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Fprintf(s.out, "%-8s delta=%-4d schema=v%d  %s\n",
				info.Num, info.DeltaSize, info.SchemaVer, info.Note)
		}
		return nil
	case "stats":
		return s.remoteStats()
	case "schema", "mk", "mkpattern", "sub", "set", "ln", "rm", "reclass",
		"inherit", "select", "history", "index":
		return fmt.Errorf("command %q is not available in remote mode (use a checkout-based client for edits)", cmd)
	}
	return fmt.Errorf("unknown command %q (try 'help')", cmd)
}

// remoteQuery parses the same clause syntax the local query command takes
// into a wire query and executes it server-side.
func (s *shell) remoteQuery(rest []string) error {
	q := &wire.Query{}
	explain := false
	for i := 0; i < len(rest); {
		clause := rest[i]
		arg := func(n int) ([]string, error) {
			if len(rest)-i-1 < n {
				return nil, fmt.Errorf("clause %q needs %d argument(s); 'help' shows the syntax", clause, n)
			}
			args := rest[i+1 : i+1+n]
			i += 1 + n
			return args, nil
		}
		switch clause {
		case "class":
			a, err := arg(1)
			if err != nil {
				return err
			}
			q.Class = a[0]
			if i < len(rest) && rest[i] == "specs" {
				q.Specs = true
				i++
			}
		case "name":
			a, err := arg(1)
			if err != nil {
				return err
			}
			q.NameGlob = a[0]
		case "where":
			a, err := arg(3)
			if err != nil {
				return err
			}
			kind, raw := splitKindPrefix(a[2])
			q.Where = append(q.Where, wire.Where{
				Path: a[0], Op: a[1], ValueKind: uint8(kind), Value: raw,
			})
		case "follow":
			a, err := arg(3)
			if err != nil {
				return err
			}
			q.Follow = append(q.Follow, wire.FollowStep{Assoc: a[0], From: a[1], To: a[2]})
		case "limit", "offset":
			a, err := arg(1)
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(a[0])
			if err != nil || n < 0 {
				return fmt.Errorf("bad %s %q", clause, a[0])
			}
			if clause == "limit" {
				q.Limit = n
			} else {
				q.Offset = n
			}
		case "explain":
			explain = true
			i++
		default:
			return fmt.Errorf("unknown clause %q ('help' shows the syntax)", clause)
		}
	}
	objs, total, plan, err := s.remote.QueryPlan(q)
	if err != nil {
		return err
	}
	if explain {
		if plan == nil {
			fmt.Fprintln(s.out, "plan: (server reports no plan)")
		} else {
			fmt.Fprintf(s.out, "plan: access=%s", plan.Access)
			if plan.Index != "" {
				fmt.Fprintf(s.out, " index=%q", plan.Index)
			}
			fmt.Fprintf(s.out, " est=%d candidates=%d matched=%d residual=%d",
				plan.Est, plan.Candidates, plan.Matched, plan.Residual)
			if plan.Forced {
				fmt.Fprint(s.out, " forced")
			}
			fmt.Fprintln(s.out)
		}
	}
	for _, o := range objs {
		label := o.Name
		if o.Path != "" {
			label = o.Path
		}
		fmt.Fprintf(s.out, "%-32s %s", label, o.Class)
		if o.ValueKind != 0 {
			fmt.Fprintf(s.out, " = %s", o.Value)
		}
		fmt.Fprintln(s.out)
	}
	fmt.Fprintf(s.out, "%d of %d match(es)\n", len(objs), total)
	return nil
}

// remoteTree renders one retrieved subtree: objects indented by their path
// depth, then the root's relationships.
func (s *shell) remoteTree(name string) error {
	snaps, err := s.remote.Get(name)
	if err != nil {
		return err
	}
	for _, snap := range snaps {
		for _, o := range snap.Objects {
			depth := strings.Count(o.Path, ".")
			label := o.Path
			if label == "" {
				label = o.Name
			}
			fmt.Fprintf(s.out, "%s%s (%s)", strings.Repeat("  ", depth), label, o.Class)
			if o.ValueKind != 0 {
				fmt.Fprintf(s.out, " = %s", o.Value)
			}
			fmt.Fprintln(s.out)
		}
		for _, r := range snap.Rels {
			fmt.Fprintf(s.out, "  -- %s:", r.Assoc)
			for role, end := range r.Ends {
				fmt.Fprintf(s.out, " %s=%s", role, end)
			}
			fmt.Fprintln(s.out)
		}
	}
	return nil
}

// remoteStats renders the server's structured stats — database shape plus
// the serving-plane gauges (connections, locks, admission state, drain).
func (s *shell) remoteStats() error {
	st, err := s.remote.StatsInfo()
	if err != nil {
		return err
	}
	for _, row := range []struct {
		name  string
		value any
	}{
		{"objects", st.Objects},
		{"relationships", st.Relationships},
		{"patterns", st.Patterns},
		{"deleted", st.Deleted},
		{"versions", st.Versions},
		{"schema-version", st.SchemaVersion},
		{"generation", st.Generation},
		{"open-txs", st.OpenTxs},
		{"wal-segments", st.WALSegments},
		{"wal-bytes", st.WALBytes},
		{"connections", st.Connections},
		{"locks", st.Locks},
		{"in-flight", st.InFlight},
		{"queued", st.Queued},
		{"rejected", st.Rejected},
		{"draining", st.Draining},
	} {
		fmt.Fprintf(s.out, "%-16s %v\n", row.name, row.value)
	}
	if st.Follower {
		fmt.Fprintf(s.out, "%-16s %v\n", "follower-gen", st.FollowerGen)
		fmt.Fprintf(s.out, "%-16s %v\n", "follower-lag", st.FollowerLag)
	}
	if len(st.QueryPlans) > 0 {
		paths := make([]string, 0, len(st.QueryPlans))
		for p := range st.QueryPlans {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			fmt.Fprintf(s.out, "%-16s %v\n", "queries-"+p, st.QueryPlans[p])
		}
	}
	return nil
}

// splitKindPrefix splits an optional kind prefix (int:5, real:1.5,
// bool:true, date:1986-02-05, str:x) off a comparison value; without a
// prefix the value is a string.
func splitKindPrefix(raw string) (seed.Kind, string) {
	if k, rest, ok := strings.Cut(raw, ":"); ok {
		switch k {
		case "str":
			return seed.KindString, rest
		case "int":
			return seed.KindInteger, rest
		case "real":
			return seed.KindReal, rest
		case "bool":
			return seed.KindBoolean, rest
		case "date":
			return seed.KindDate, rest
		}
	}
	return seed.KindString, raw
}
