package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/server"
	"repro/seed"
)

func newRemoteShell(t *testing.T) (*shell, *seed.Database, func() string) {
	t.Helper()
	db, err := seed.NewMemory(seed.Figure3Schema())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	sh := &shell{remote: c, out: f}
	return sh, db, func() string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

func TestRemoteShellSession(t *testing.T) {
	sh, db, output := newRemoteShell(t)
	if _, err := db.CreateObject("Data", "Alarms"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateObject("Action", "Handler"); err != nil {
		t.Fatal(err)
	}
	run(t, sh,
		"ls",
		"query class Data",
		"tree Alarms",
		"check",
		"save first remote version",
		"versions",
		"stats",
	)
	out := output()
	for _, want := range []string{
		"Alarms", "Handler",
		"1 of 1 match(es)",
		"saved version",
		"first remote version",
		"objects", "relationships",
		"connections", "in-flight", "queued", "rejected", "locks", "draining",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("remote session output missing %q:\n%s", want, out)
		}
	}
}

func TestRemoteShellRefusesEdits(t *testing.T) {
	sh, _, _ := newRemoteShell(t)
	for _, cmd := range []string{"mk Data X", "set a b", "rm a", "select 1"} {
		if err := sh.exec(cmd); err == nil || !strings.Contains(err.Error(), "not available in remote mode") {
			t.Errorf("%q: err = %v, want remote-mode refusal", cmd, err)
		}
	}
	if err := sh.exec("bogus"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("bogus: err = %v", err)
	}
}
