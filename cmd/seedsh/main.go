// Command seedsh is an interactive shell for a SEED database: the
// operational interface of the paper's prototype, plus versions, patterns,
// and completeness reports, at a prompt.
//
// Usage:
//
//	seedsh                      # in-memory database, figure 3 schema
//	seedsh -dir db              # file-backed (fresh dirs get figure 3)
//	seedsh -dir db -schema s.sdl
//	seedsh -addr host:7544      # remote: retrieval/versions/stats over the wire
//
// With -addr the shell connects to a running seedserver instead of opening
// a database: ls, query, show, tree, check, save, versions, and stats run
// server-side (stats then reports the serving plane too — connections,
// locks, admission gauges, drain state); editing commands are refused,
// since edits go through checkout-based clients.
//
// Type 'help' at the prompt for commands.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/item"
	"repro/seed"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty: in-memory)")
	schemaFile := flag.String("schema", "", "SDL schema file for fresh databases")
	addr := flag.String("addr", "", "seedserver address; connects remotely instead of opening a database")
	flag.Parse()

	sh := &shell{out: os.Stdout}
	if *addr != "" {
		if *dir != "" || *schemaFile != "" {
			log.Fatal("-addr is exclusive with -dir and -schema (the database lives server-side)")
		}
		c, err := client.Dial(*addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		sh.remote = c
	} else {
		sch := seed.Figure3Schema()
		if *schemaFile != "" {
			text, err := os.ReadFile(*schemaFile)
			if err != nil {
				log.Fatal(err)
			}
			sch, err = seed.ParseSDL(string(text))
			if err != nil {
				log.Fatal(err)
			}
		}
		var db *seed.Database
		var err error
		if *dir == "" {
			db, err = seed.NewMemory(sch)
		} else {
			db, err = seed.Open(*dir, seed.Options{Schema: sch, CompactAfter: 4 << 20})
		}
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		sh.db = db
	}
	fmt.Println("SEED shell — 'help' lists commands, 'quit' exits")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("seed> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

type shell struct {
	db     *seed.Database
	remote *client.Client // non-nil in -addr mode; db is nil then
	out    *os.File
}

func (s *shell) exec(line string) error {
	if s.remote != nil {
		return s.execRemote(line)
	}
	args := strings.Fields(line)
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "help":
		s.help()
		return nil
	case "schema":
		fmt.Fprint(s.out, seed.RenderSDL(s.db.Schema()))
		return nil
	case "ls":
		return s.list(rest)
	case "query":
		return s.query(rest)
	case "index":
		return s.index(rest)
	case "mk":
		return s.make(rest, false)
	case "mkpattern":
		return s.make(rest, true)
	case "sub":
		return s.sub(rest)
	case "set":
		return s.set(rest)
	case "ln":
		return s.link(rest)
	case "rm":
		return s.remove(rest)
	case "reclass":
		return s.reclass(rest)
	case "show":
		return s.show(rest)
	case "tree":
		return s.tree(rest)
	case "check":
		for _, f := range s.db.Completeness() {
			fmt.Fprintf(s.out, "%v\n", f)
		}
		return nil
	case "save":
		num, err := s.db.SaveVersion(strings.Join(rest, " "))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "saved version %s\n", num)
		return nil
	case "versions":
		for _, info := range s.db.Versions() {
			parent := "-"
			if len(info.Parent) > 0 {
				parent = info.Parent.String()
			}
			fmt.Fprintf(s.out, "%-8s parent=%-8s delta=%-4d schema=v%d  %s\n",
				info.Num, parent, info.DeltaSize, info.SchemaVersion, info.Note)
		}
		return nil
	case "select":
		if len(rest) != 1 {
			return fmt.Errorf("usage: select <version>")
		}
		num, err := seed.ParseVersion(rest[0])
		if err != nil {
			return err
		}
		return s.db.SelectVersion(num)
	case "history":
		return s.history(rest)
	case "inherit":
		return s.inherit(rest)
	case "stats":
		st := s.db.Stats()
		fmt.Fprintf(s.out, "objects=%d rels=%d patterns=%d deleted=%d dirty=%d versions=%d schema=v%d log=%dB\n",
			st.Core.Objects, st.Core.Relationships, st.Core.Patterns,
			st.Core.DeletedObjects+st.Core.DeletedRels, st.Core.DirtySinceFreeze,
			st.Versions, st.SchemaV, st.LogBytes)
		return nil
	}
	return fmt.Errorf("unknown command %q (try 'help')", cmd)
}

func (s *shell) help() {
	fmt.Fprint(s.out, `data
  mk <class> <name>             create an independent object
  mkpattern <class> <name>      create a pattern object
  sub <path> <role> [value]     create a sub-object (value objects take a value)
  set <path> <value>            set a value object's value
  ln <assoc> role=path ...      create a relationship
  rm <path>                     delete (marks; cascades)
  reclass <path> <class|assoc>  re-classify within a generalization hierarchy
  inherit <patternName> <name>  let an object inherit a pattern
retrieval
  ls [class]                    list independent objects
  query <clauses>               run a query; clauses (repeatable where/follow):
                                  class <C> [specs] | name <glob>
                                  where <rolePath> <op> <value>   (op: = != < <= > >= contains;
                                    value takes an optional kind prefix str:/int:/real:/bool:/date:)
                                  follow <assoc> <fromRole> <toRole>
                                  limit <n> | offset <n>
                                  explain                         (print the chosen access path
                                    and estimated vs actual cardinalities)
  index                         list attribute indexes
  index <class> <path> [kind]   register an attribute index (kind: ordered* or hash)
  index drop <class> <path>     drop an attribute index
  show <path>                   show one object
  tree <name>                   show an object subtree with relationships
  check                         completeness report
versions
  save <note...>                save a version
  versions                      list versions
  select <num>                  select a version as basis of further work
  history <path>                versions storing the item
misc
  schema | stats | help | quit
`)
}

func (s *shell) list(rest []string) error {
	q := seed.NewQuery()
	if len(rest) > 0 {
		q = q.Class(rest[0], true)
	}
	v := s.db.View()
	ids, err := q.Run(v)
	if err != nil {
		return err
	}
	for _, id := range ids {
		o, ok := v.Object(id)
		if !ok || !o.Independent() {
			continue
		}
		fmt.Fprintf(s.out, "%-24s %s\n", o.Name, o.Class.QualifiedName())
	}
	return nil
}

// query evaluates an ad-hoc retrieval over the current view: the same
// selection → follow → page shape the wire protocol's query operation
// executes server-side.
func (s *shell) query(rest []string) error {
	q := seed.NewQuery()
	var follows []seed.FollowStep
	limit, offset := 0, 0
	explain := false
	for i := 0; i < len(rest); {
		clause := rest[i]
		arg := func(n int) ([]string, error) {
			if len(rest)-i-1 < n {
				return nil, fmt.Errorf("clause %q needs %d argument(s); 'help' shows the syntax", clause, n)
			}
			args := rest[i+1 : i+1+n]
			i += 1 + n
			return args, nil
		}
		switch clause {
		case "class":
			a, err := arg(1)
			if err != nil {
				return err
			}
			specs := false
			if i < len(rest) && rest[i] == "specs" {
				specs = true
				i++
			}
			q = q.Class(a[0], specs)
		case "name":
			a, err := arg(1)
			if err != nil {
				return err
			}
			q = q.NameGlob(a[0])
		case "where":
			a, err := arg(3)
			if err != nil {
				return err
			}
			op, err := seed.ParseCompareOp(a[1])
			if err != nil {
				return err
			}
			val, err := parseQueryValue(a[2])
			if err != nil {
				return err
			}
			q = q.Where(a[0], op, val)
		case "follow":
			a, err := arg(3)
			if err != nil {
				return err
			}
			follows = append(follows, seed.FollowStep{Assoc: a[0], From: a[1], To: a[2]})
		case "limit", "offset":
			a, err := arg(1)
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(a[0])
			if err != nil || n < 0 {
				return fmt.Errorf("bad %s %q", clause, a[0])
			}
			if clause == "limit" {
				limit = n
			} else {
				offset = n
			}
		case "explain":
			explain = true
			i++
		default:
			return fmt.Errorf("unknown clause %q ('help' shows the syntax)", clause)
		}
	}
	v := s.db.View()
	ids, plan, err := seed.RunPlan(q, v)
	if err != nil {
		return err
	}
	if explain {
		fmt.Fprintf(s.out, "plan: %s\n", plan)
	}
	ids, total, err := seed.FollowPage(v, ids, follows, limit, offset)
	if err != nil {
		return err
	}
	for _, id := range ids {
		o, ok := v.Object(id)
		if !ok {
			continue
		}
		label := o.Name
		if p, ok := item.PathOf(v, id); ok {
			label = p.String()
		}
		fmt.Fprintf(s.out, "%-32s %s", label, o.Class.QualifiedName())
		if o.Value.IsDefined() {
			fmt.Fprintf(s.out, " = %s", o.Value.Quote())
		}
		fmt.Fprintln(s.out)
	}
	fmt.Fprintf(s.out, "%d of %d match(es)\n", len(ids), total)
	return nil
}

// index registers, drops, and lists attribute indexes on the local database.
func (s *shell) index(rest []string) error {
	switch {
	case len(rest) == 0:
		for _, spec := range s.db.AttrIndexes() {
			fmt.Fprintf(s.out, "%-40s %s\n", spec.Key, spec.Kind)
		}
		return nil
	case rest[0] == "drop":
		if len(rest) != 3 {
			return fmt.Errorf("usage: index drop <class> <path>")
		}
		return s.db.DropAttrIndex(rest[1], rest[2])
	case len(rest) == 2 || len(rest) == 3:
		kind := seed.AttrOrdered
		if len(rest) == 3 {
			var err error
			kind, err = seed.ParseAttrKind(rest[2])
			if err != nil {
				return err
			}
		}
		return s.db.CreateAttrIndex(rest[0], rest[1], kind)
	}
	return fmt.Errorf("usage: index [<class> <path> [hash|ordered] | drop <class> <path>]")
}

// parseQueryValue parses a comparison value with an optional kind prefix
// (int:5, real:1.5, bool:true, date:1986-02-05, str:x); without a prefix
// the value is a string.
func parseQueryValue(raw string) (seed.Value, error) {
	kind, rest := splitKindPrefix(raw)
	return seed.ParseValue(kind, rest)
}

func (s *shell) make(rest []string, pattern bool) error {
	if len(rest) != 2 {
		return fmt.Errorf("usage: mk <class> <name>")
	}
	var err error
	if pattern {
		_, err = s.db.CreatePatternObject(rest[0], rest[1])
	} else {
		_, err = s.db.CreateObject(rest[0], rest[1])
	}
	return err
}

func (s *shell) sub(rest []string) error {
	if len(rest) < 2 {
		return fmt.Errorf("usage: sub <path> <role> [value]")
	}
	parent, err := s.resolve(rest[0])
	if err != nil {
		return err
	}
	if len(rest) == 2 {
		_, err = s.db.CreateSubObject(parent, rest[1])
		return err
	}
	val, err := s.parseValueFor(parent, rest[1], strings.Join(rest[2:], " "))
	if err != nil {
		return err
	}
	_, err = s.db.CreateValueObject(parent, rest[1], val)
	return err
}

func (s *shell) set(rest []string) error {
	if len(rest) < 2 {
		return fmt.Errorf("usage: set <path> <value>")
	}
	id, err := s.resolve(rest[0])
	if err != nil {
		return err
	}
	o, ok := s.db.RawView().Object(id)
	if !ok {
		return fmt.Errorf("no object at %q", rest[0])
	}
	val, err := seed.ParseValue(o.Class.ValueKind(), strings.Join(rest[1:], " "))
	if err != nil {
		return err
	}
	return s.db.SetValue(id, val)
}

func (s *shell) link(rest []string) error {
	if len(rest) < 3 {
		return fmt.Errorf("usage: ln <assoc> role=path role=path ...")
	}
	ends := make(map[string]seed.ID)
	for _, pair := range rest[1:] {
		role, path, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("bad end %q (want role=path)", pair)
		}
		id, err := s.resolve(path)
		if err != nil {
			return err
		}
		ends[role] = id
	}
	_, err := s.db.CreateRelationship(rest[0], ends)
	return err
}

func (s *shell) remove(rest []string) error {
	if len(rest) != 1 {
		return fmt.Errorf("usage: rm <path>")
	}
	id, err := s.resolve(rest[0])
	if err != nil {
		return err
	}
	return s.db.Delete(id)
}

func (s *shell) reclass(rest []string) error {
	if len(rest) != 2 {
		return fmt.Errorf("usage: reclass <path> <class>")
	}
	id, err := s.resolve(rest[0])
	if err != nil {
		return err
	}
	return s.db.Reclassify(id, rest[1])
}

func (s *shell) show(rest []string) error {
	if len(rest) != 1 {
		return fmt.Errorf("usage: show <path>")
	}
	id, err := s.resolve(rest[0])
	if err != nil {
		return err
	}
	v := s.db.View()
	o, ok := v.Object(id)
	if !ok {
		o, ok = s.db.RawView().Object(id)
		if !ok {
			return fmt.Errorf("no object at %q", rest[0])
		}
	}
	fmt.Fprintf(s.out, "id=%d class=%s", o.ID, o.Class.QualifiedName())
	if o.Pattern {
		fmt.Fprint(s.out, " pattern")
	}
	if o.Value.IsDefined() {
		fmt.Fprintf(s.out, " value=%s", o.Value.Quote())
	}
	fmt.Fprintln(s.out)
	return nil
}

func (s *shell) tree(rest []string) error {
	if len(rest) != 1 {
		return fmt.Errorf("usage: tree <name>")
	}
	v := s.db.View()
	id, ok := v.ObjectByName(rest[0])
	if !ok {
		return fmt.Errorf("no object named %q", rest[0])
	}
	var walk func(id seed.ID, depth int)
	walk = func(id seed.ID, depth int) {
		o, ok := v.Object(id)
		if !ok {
			return
		}
		indent := strings.Repeat("  ", depth)
		label := o.Name
		if !o.Independent() {
			label = o.Component().String()
		}
		fmt.Fprintf(s.out, "%s%s (%s)", indent, label, o.Class.QualifiedName())
		if o.Value.IsDefined() {
			fmt.Fprintf(s.out, " = %s", o.Value.Quote())
		}
		fmt.Fprintln(s.out)
		for _, ch := range v.Children(id, "") {
			walk(ch, depth+1)
		}
	}
	walk(id, 0)
	for _, rid := range v.RelationshipsOf(id) {
		r, ok := v.Relationship(rid)
		if !ok {
			continue
		}
		name := "inherits"
		if r.Assoc != nil {
			name = r.Assoc.Name()
		}
		fmt.Fprintf(s.out, "  -- %s:", name)
		for _, e := range r.Ends {
			eo, _ := v.Object(e.Object)
			label := eo.Name
			if label == "" {
				label = fmt.Sprintf("#%d", e.Object)
			}
			fmt.Fprintf(s.out, " %s=%s", e.Role, label)
		}
		fmt.Fprintln(s.out)
	}
	return nil
}

func (s *shell) history(rest []string) error {
	if len(rest) < 1 {
		return fmt.Errorf("usage: history <path> [fromVersion]")
	}
	id, err := s.resolve(rest[0])
	if err != nil {
		return err
	}
	var prefix seed.VersionNumber
	if len(rest) > 1 {
		prefix, err = seed.ParseVersion(rest[1])
		if err != nil {
			return err
		}
	}
	for _, info := range s.db.HistoryOf(id, prefix) {
		fmt.Fprintf(s.out, "%-8s %s\n", info.Num, info.Note)
	}
	return nil
}

func (s *shell) inherit(rest []string) error {
	if len(rest) != 2 {
		return fmt.Errorf("usage: inherit <patternName> <inheritorName>")
	}
	pat, err := s.resolve(rest[0])
	if err != nil {
		return err
	}
	inh, err := s.resolve(rest[1])
	if err != nil {
		return err
	}
	_, err = s.db.Inherit(pat, inh)
	return err
}

// parseValueFor parses a surface value against the value kind the schema
// declares for the parent's role.
func (s *shell) parseValueFor(parent seed.ID, role, raw string) (seed.Value, error) {
	v := s.db.RawView()
	var kind seed.Kind
	if o, ok := v.Object(parent); ok {
		cls, err := o.Class.ResolveChild(role)
		if err != nil {
			return seed.Undefined, err
		}
		kind = cls.ValueKind()
	} else if r, ok := v.Relationship(parent); ok && r.Assoc != nil {
		cls, err := r.Assoc.ResolveChild(role)
		if err != nil {
			return seed.Undefined, err
		}
		kind = cls.ValueKind()
	} else {
		return seed.Undefined, fmt.Errorf("no item at parent")
	}
	return seed.ParseValue(kind, raw)
}

// resolve looks a path up in the user view first and falls back to the raw
// view so that patterns stay addressable.
func (s *shell) resolve(path string) (seed.ID, error) {
	if id, err := s.db.ResolvePath(path); err == nil {
		return id, nil
	}
	return s.db.ResolvePathRaw(path)
}
