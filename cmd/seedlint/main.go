// Command seedlint runs the engine's static-analysis suite (frozenmut,
// guardedby, sentinelcmp, opexhaustive — see internal/lint) over package
// patterns:
//
//	seedlint ./...                      # whole repo, all analyzers
//	seedlint -run sentinelcmp ./seed    # one analyzer while burning down
//	seedlint -json ./... > lint.json    # machine-readable findings
//	go vet -vettool=$(which seedlint) ./...
//
// The last form speaks `go vet`'s unit-checker protocol (a JSON .cfg per
// package), so seedlint composes with vet's caching and package graph.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// go vet's vettool handshake arrives before our own flags: -V=full
	// asks for a cache-key version line, -flags for the flag inventory,
	// and a lone *.cfg argument is one unit of work.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Fprintln(stdout, "seedlint version v1.0.0")
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return lint.RunUnit(args[0], stdout, stderr)
		}
	}

	fs := flag.NewFlagSet("seedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array on stdout")
		runSel  = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		dir     = fs.String("dir", "", "directory to resolve package patterns in (default: cwd)")
		tests   = fs.Bool("tests", true, "also analyze in-package _test.go files")
		list    = fs.Bool("analyzers", false, "list the analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(*runSel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fmt.Fprintln(stderr, "seedlint: no packages (try `seedlint ./...`)")
		return 2
	}
	pkgs, err := lint.NewLoader(*dir, *tests).Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(stderr, "seedlint: %s: type error: %v\n", p.Path, te)
		}
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		lint.WritePlain(stdout, findings)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
