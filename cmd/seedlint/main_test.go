package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one sentinelcmp violation,
// so the smoke tests exercise the real load-analyze-report path without
// depending on the repo's own (clean) packages.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module plant\n\ngo 1.24\n",
		"plant.go": `package plant

import "errors"

var ErrPlant = errors.New("plant")

func compare(err error) bool {
	return err == ErrPlant
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestVetHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit %d, stderr %q", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "seedlint version") {
		t.Fatalf("-V=full output %q, want version line", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("-flags output %q, want []", stdout.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-analyzers exit %d", code)
	}
	for _, name := range []string{"frozenmut", "guardedby", "sentinelcmp", "opexhaustive"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-analyzers output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestPlainFindings(t *testing.T) {
	dir := writeModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (findings); stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "sentinelcmp") || !strings.Contains(stdout.String(), "ErrPlant") {
		t.Fatalf("findings output missing the planted violation:\n%s", stdout.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-dir", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr %q", code, stderr.String())
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		Position string `json:"position"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Analyzer != "sentinelcmp" {
		t.Fatalf("findings = %+v, want one sentinelcmp finding", findings)
	}
	if !strings.Contains(findings[0].Position, "plant.go") {
		t.Errorf("position %q does not name plant.go", findings[0].Position)
	}
}

// TestRunFilter gates on a subset: the planted violation is sentinelcmp,
// so running only opexhaustive over the same module must come back clean.
func TestRunFilter(t *testing.T) {
	dir := writeModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "opexhaustive", "-dir", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-run opexhaustive exit %d, want 0; stdout %q stderr %q",
			code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"-run", "sentinelcmp", "-dir", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-run sentinelcmp exit %d, want 1", code)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nosuch", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nosuch exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr %q does not explain the unknown analyzer", stderr.String())
	}
}
