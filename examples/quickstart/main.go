// Command quickstart builds the exact object-relationship structure of
// figure 1 of the paper under the schema of figure 2, then shows SEED's
// two retrieval styles: by name and by qualified path.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/seed"
)

func main() {
	// The schema of figure 2: Data and Action classes, Read/Write/Contained
	// associations. Schemas can also be parsed from SDL text.
	db, err := seed.NewMemory(seed.Figure2Schema())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// (1) An independent object with name 'Alarms'.
	alarms, err := db.CreateObject("Data", "Alarms")
	check(err)
	handler, err := db.CreateObject("Action", "AlarmHandler")
	check(err)

	// (2) A relationship 'Read', relating 'AlarmHandler' and 'Alarms' in
	// roles 'by' and 'from'.
	_, err = db.CreateRelationship("Read", map[string]seed.ID{
		"from": alarms,
		"by":   handler,
	})
	check(err)

	// (3) The dependent object 'Alarms.Text' with its Body and Selector.
	text, err := db.CreateSubObject(alarms, "Text")
	check(err)
	body, err := db.CreateSubObject(text, "Body")
	check(err)
	_, err = db.CreateValueObject(text, "Selector", seed.NewString("Representation"))
	check(err)

	// (4) Keywords with positional indices.
	_, err = db.CreateValueObject(body, "Keywords", seed.NewString("Alarmhandling"))
	check(err)
	kw1, err := db.CreateValueObject(body, "Keywords", seed.NewString("Display"))
	check(err)

	// Composed names: the name of a dependent object is the name of its
	// parent plus its role in the parent's context.
	path, _ := db.PathOf(kw1)
	fmt.Printf("created %s\n", path)

	// Retrieval by name and by path.
	if o, ok := db.GetObject("Alarms"); ok {
		fmt.Printf("object %q has class %s\n", o.Name, o.Class.QualifiedName())
	}
	sel, err := db.ResolvePath("Alarms.Text[0].Selector")
	check(err)
	o, _ := db.View().Object(sel)
	fmt.Printf("Alarms.Text[0].Selector = %s\n", o.Value.Quote())

	// Consistency is enforced on every update: a 17th Text is rejected
	// (Data.Text has cardinality 0..16).
	for i := 0; i < 15; i++ {
		if _, err := db.CreateSubObject(alarms, "Text"); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := db.CreateSubObject(alarms, "Text"); err != nil {
		fmt.Printf("17th Text rejected: %v\n", err)
	}

	// Completeness is a report, not an error: 'Alarms' still lacks its
	// Write relationship (minimum cardinality 1..* of Write.from).
	for _, f := range db.Completeness() {
		if f.Item == alarms {
			fmt.Printf("finding: %v\n", f)
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
