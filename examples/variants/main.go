// Command variants builds the variants family of figure 5 of the paper
// (experiment E4): a set of system configurations that share most of their
// structure (the common part) but differ in some hardware-dependent
// modules. The common part connects to pattern objects via pattern
// relationships; every variant inherits the patterns and thereby provably
// has the same relationships to the common part.
//
// Run with:
//
//	go run ./examples/variants
package main

import (
	"fmt"
	"log"

	"repro/seed"
)

func main() {
	db, err := seed.NewMemory(seed.Figure3Schema())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The common part: configuration data every variant shares.
	common, err := db.CreateObject("Data", "SharedModules")
	check(err)
	_, err = db.CreateValueObject(common, "Description",
		seed.NewString("software modules common to all configurations"))
	check(err)

	// Pattern objects PO1 and PO2 with pattern relationships PR1, PR2 to
	// the common part (relationships touching a pattern become pattern
	// relationships automatically).
	po1, err := db.CreatePatternObject("Action", "LoaderTemplate")
	check(err)
	po2, err := db.CreatePatternObject("Action", "DriverTemplate")
	check(err)
	_, err = db.CreateRelationship("Access", map[string]seed.ID{"from": common, "by": po1})
	check(err)
	_, err = db.CreateRelationship("Access", map[string]seed.ID{"from": common, "by": po2})
	check(err)
	// The templates carry shared information — e.g. a deadline-like
	// description every variant must show identically.
	_, err = db.CreateValueObject(po1, "Description", seed.NewString("loads shared modules at boot"))
	check(err)

	// Patterns are invisible to retrieval until inherited.
	if _, ok := db.View().ObjectByName("LoaderTemplate"); !ok {
		fmt.Println("patterns are invisible to retrieval")
	}

	// Two variants: configurations for different target hardware.
	family := db.NewVariantFamily(po1, po2)
	varA, err := family.AddVariant("Action", "ConfigVAX")
	check(err)
	varB, err := family.AddVariant("Action", "ConfigM68k")
	check(err)

	// Both variants have inherited relationships to the common part.
	v := db.View()
	for _, variant := range []seed.ID{varA, varB} {
		o, _ := v.Object(variant)
		fmt.Printf("%s:\n", o.Name)
		for _, rid := range v.RelationshipsOf(variant) {
			r, _ := v.Relationship(rid)
			from, _ := v.Object(r.End("from"))
			src, pat, _, _ := db.Origin(rid)
			fmt.Printf("  inherited %s to %q (from pattern item %d via pattern %d)\n",
				r.Assoc.Name(), from.Name, src, pat)
		}
		for _, ch := range v.Children(variant, "Description") {
			c, _ := v.Object(ch)
			fmt.Printf("  inherited description: %s\n", c.Value.Quote())
		}
	}

	// Pattern information cannot be updated in the context of inheritors...
	rels := v.RelationshipsOf(varA)
	if err := db.Delete(rels[0]); err != nil {
		fmt.Printf("update in inheritor context rejected: %v\n", err)
	}
	// ...but an update of the pattern automatically propagates to all
	// inheritors.
	descID, err := db.ResolvePathRaw("LoaderTemplate.Description")
	check(err)
	check(db.SetValue(descID, seed.NewString("loads shared modules at boot (v2)")))
	v = db.View()
	for _, variant := range []seed.ID{varA, varB} {
		o, _ := v.Object(variant)
		for _, ch := range v.Children(variant, "Description") {
			c, _ := v.Object(ch)
			fmt.Printf("%s now shows: %s\n", o.Name, c.Value.Quote())
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
