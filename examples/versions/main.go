// Command versions replays the version scenario of figure 4 of the paper
// (experiment E3): the 'AlarmHandler' object evolves over versions 1.0 and
// 2.0 and a current state; views to old versions reconstruct figures 4c and
// 4b; selecting a historical version branches an alternative. The database
// is file-backed, so the full version tree survives restarts.
//
// Run with:
//
//	go run ./examples/versions
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/seed"
)

func main() {
	dir := filepath.Join(os.TempDir(), "seed-versions-example")
	_ = os.RemoveAll(dir)
	db, err := seed.Open(dir, seed.Options{Schema: seed.Figure3Schema()})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer os.RemoveAll(dir)

	// Version 1.0 (figure 4c): "Handles alarms".
	handler, err := db.CreateObject("Action", "AlarmHandler")
	check(err)
	desc, err := db.CreateValueObject(handler, "Description", seed.NewString("Handles alarms"))
	check(err)
	_, err = db.CreateValueObject(handler, "Revised",
		seed.NewDate(time.Date(1985, 6, 1, 0, 0, 0, 0, time.UTC)))
	check(err)
	v1, err := db.SaveVersion("first complete draft")
	check(err)
	fmt.Printf("saved version %s\n", v1)

	// Version 2.0: "Handles alarms derived from ProcessData".
	check(db.SetValue(desc, seed.NewString("Handles alarms derived from ProcessData")))
	v2, err := db.SaveVersion("derivation clarified")
	check(err)
	fmt.Printf("saved version %s (delta stores %d item)\n", v2, deltaOf(db, v2))

	// Current (figure 4b): "Generates alarms from process data, triggers
	// Operator Alert".
	check(db.SetValue(desc, seed.NewString("Generates alarms from process data, triggers Operator Alert")))

	// Retrieval from old versions works like retrieval from the current
	// version: select the view, then read.
	for _, num := range []seed.VersionNumber{v1, v2} {
		view, err := db.VersionView(num)
		check(err)
		o, _ := view.Object(desc)
		fmt.Printf("version %-4s description: %s\n", num, o.Value.Quote())
	}
	o, _ := db.View().Object(desc)
	fmt.Printf("current      description: %s\n", o.Value.Quote())

	// History retrieval: all versions of the description object.
	fmt.Println("\nhistory of AlarmHandler.Description:")
	for _, info := range db.HistoryOf(desc, nil) {
		fmt.Printf("  %-6s %s\n", info.Num, info.Note)
	}

	// Alternatives: select 1.0 and explore a different design. The current
	// state has unsaved changes, so they must be saved or discarded first.
	_, err = db.SaveVersion("operator alert design")
	check(err)
	check(db.SelectVersion(v1))
	check(db.SetValue(mustPath(db, "AlarmHandler.Description"),
		seed.NewString("Forwards raw alarms unchanged")))
	alt, err := db.SaveVersion("minimalist alternative")
	check(err)
	fmt.Printf("\nalternative saved as %s (branched off %s)\n", alt, v1)

	fmt.Println("\nversion tree:")
	for _, info := range db.Versions() {
		parent := "-"
		if len(info.Parent) > 0 {
			parent = info.Parent.String()
		}
		fmt.Printf("  %-8s parent=%-6s delta=%d  %s\n", info.Num, parent, info.DeltaSize, info.Note)
	}
}

func deltaOf(db *seed.Database, num seed.VersionNumber) int {
	for _, info := range db.Versions() {
		if info.Num.Equal(num) {
			return info.DeltaSize
		}
	}
	return -1
}

func mustPath(db *seed.Database, p string) seed.ID {
	id, err := db.ResolvePath(p)
	check(err)
	return id
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
