// Command specification walks through an evolutionary specification
// session the way the paper's "Vague data" section describes it: vague
// information enters the database and is made more precise step by step,
// with consistency checked on every update and incompleteness detectable
// at any point (experiment E2, figure 3).
//
// Run with:
//
//	go run ./examples/specification
package main

import (
	"fmt"
	"log"

	"repro/internal/spades"
	"repro/seed"
)

func main() {
	db, err := seed.NewMemory(seed.Figure3Schema())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	project := spades.NewProject(db)

	// Development starts with informal, incomplete, vague descriptions:
	// "There is a thing with name 'Alarms'".
	check(project.AddThing("Alarms"))
	check(project.Describe("Alarms", "something about alarms, to be clarified"))
	check(project.AddAction("Sensor"))
	fmt.Println("step 1: vague thing 'Alarms' recorded")

	// The schema prevents what is known to be wrong: a dataflow needs a
	// data object, and 'Alarms' is still just a thing.
	if err := project.Flow("Sensor", "Alarms", spades.VagueFlow); err != nil {
		fmt.Printf("step 2: flow rejected while Alarms is vague: %v\n", err)
	}

	// "When we know more about 'Alarms', e.g. that it is a data object
	// which is accessed by action 'Sensor'": re-classify and connect.
	check(project.MakePrecise("Alarms", "Data"))
	check(project.Flow("Sensor", "Alarms", spades.VagueFlow))
	fmt.Println("step 3: Alarms re-classified to Data, vague Access recorded")

	// "In a next step, we might learn that 'Alarms' is an output":
	// specialize the object, then the relationship.
	check(project.MakePrecise("Alarms", "OutputData"))
	alarms, _ := db.View().ObjectByName("Alarms")
	rels := db.View().RelationshipsOf(alarms)
	check(db.Reclassify(rels[0], "Write"))
	fmt.Println("step 4: Access specialized to Write")

	// "'Alarms' is an output written twice by 'Sensor', and writing is
	// repeated in case of error."
	_, err = db.CreateValueObject(rels[0], "NumberOfWrites", seed.NewInteger(2))
	check(err)
	_, err = db.CreateValueObject(rels[0], "ErrorHandling", seed.NewString("repeat"))
	check(err)
	fmt.Println("step 5: write attributes recorded")

	// Formal detection of incompleteness: what is still missing before the
	// specification can serve as a basis for implementation?
	fmt.Println("\nremaining incompleteness:")
	for _, f := range project.Check() {
		fmt.Printf("  %v\n", f)
	}

	fmt.Println()
	fmt.Println(project.Report())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
