// Command schemaevolution demonstrates schema versions: "When the schema
// is modified, the interpretation of versions that were created before this
// modification becomes a problem. Therefore, we must generate schema
// versions, too." Data versions saved under schema 1 stay interpretable
// under schema 1 after the schema evolves to version 2.
//
// Run with:
//
//	go run ./examples/schemaevolution
package main

import (
	"fmt"
	"log"

	"repro/seed"
)

func main() {
	db, err := seed.NewMemory(seed.Figure3Schema())
	check(err)
	defer db.Close()

	// Work under schema version 1.
	alarms, err := db.CreateObject("Data", "Alarms")
	check(err)
	_, err = db.CreateValueObject(alarms, "Description", seed.NewString("alarm store"))
	check(err)
	v1, err := db.SaveVersion("under schema v1")
	check(err)
	fmt.Printf("saved %s under schema v%d\n", v1, db.SchemaVersion())

	// Evolve: a new top-level class and a new sub-class on Thing.
	err = db.EvolveSchema(func(s *seed.Schema) error {
		module, err := s.AddClass("Module")
		if err != nil {
			return err
		}
		if _, err := module.AddChild("Language", seed.AtMostOne, seed.KindString); err != nil {
			return err
		}
		thing, err := s.Class("Thing")
		if err != nil {
			return err
		}
		_, err = thing.AddChild("Author", seed.AtMostOne, seed.KindString)
		return err
	})
	check(err)
	fmt.Printf("schema evolved to v%d\n", db.SchemaVersion())

	// New categories are usable immediately; old data is intact.
	kernel, err := db.CreateObject("Module", "Kernel")
	check(err)
	_, err = db.CreateValueObject(kernel, "Language", seed.NewString("Modula-2"))
	check(err)
	_, err = db.CreateValueObject(alarms, "Author", seed.NewString("glinz"))
	check(err)
	v2, err := db.SaveVersion("under schema v2")
	check(err)
	fmt.Printf("saved %s under schema v%d\n", v2, db.SchemaVersion())

	// Old versions are interpreted under their own schema version.
	for _, info := range db.Versions() {
		view, err := db.VersionView(info.Num)
		check(err)
		_, hasModule := view.Schema().Class("Module")
		fmt.Printf("version %s: schema v%d, knows class Module: %v\n",
			info.Num, view.Schema().Version(), hasModule == nil)
	}

	// An evolution that would orphan existing data is rejected: you cannot
	// re-type a populated sub-class.
	err = db.EvolveSchema(func(s *seed.Schema) error {
		_, err := s.AddClass("Module") // duplicate name
		return err
	})
	fmt.Printf("conflicting evolution rejected: %v\n", err != nil)

	fmt.Println("\ncurrent schema (SDL):")
	fmt.Print(seed.RenderSDL(db.Schema()))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
