// Command clientserver demonstrates the two-level multi-user scheme the
// paper sketches under "Open problems": one central server runs the
// complete database; clients retrieve freely, take local copies with write
// locks for updates, and check updated copies back in as a single
// transaction.
//
// Run with:
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/server"
	"repro/seed"
)

func main() {
	db, err := seed.NewMemory(seed.Figure3Schema())
	check(err)
	defer db.Close()

	// Seed the central database with a small specification.
	alarms, err := db.CreateObject("Data", "Alarms")
	check(err)
	_, err = db.CreateValueObject(alarms, "Description", seed.NewString("alarm store"))
	check(err)
	_, err = db.CreateObject("Action", "AlarmHandler")
	check(err)

	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	check(err)
	defer srv.Close()
	fmt.Printf("server on %s\n", addr)

	// Two engineers connect.
	anna, err := client.Dial(addr)
	check(err)
	defer anna.Close()
	bert, err := client.Dial(addr)
	check(err)
	defer bert.Close()

	// Retrieval needs no locks.
	names, err := bert.List("Data")
	check(err)
	fmt.Printf("bert sees data objects: %v\n", names)

	// Anna checks 'Alarms' out for update: a write lock in the central
	// database.
	ws, err := anna.Checkout("Alarms")
	check(err)
	fmt.Printf("anna checked out %v\n", ws.Roots())

	// Bert cannot check it out while Anna holds the lock.
	if _, err := bert.Checkout("Alarms"); err != nil {
		fmt.Printf("bert's checkout rejected: %v\n", err)
	}

	// Anna updates her local copy and checks it back in — one transaction.
	ws.SetValue("Alarms.Description", uint8(seed.KindString), "alarm display matrix")
	ws.CreateObject("Action", "Sensor")
	ws.CreateRelationship("Access", map[string]string{"from": "Alarms", "by": "Sensor"})
	check(ws.Commit())
	fmt.Println("anna checked in 3 updates in a single transaction")

	// Now Bert can work with the released object.
	ws2, err := bert.Checkout("Alarms")
	check(err)
	check(ws2.Abandon())

	// Versions are kept centrally under server control.
	num, err := anna.SaveVersion("after anna's session")
	check(err)
	fmt.Printf("central version %s saved\n", num)
	st, err := bert.Stats()
	check(err)
	fmt.Printf("central state: %s\n", st)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
