package seed

import (
	"repro/internal/item"
	"repro/internal/query"
)

// Query re-exports: applications build queries through this package.

type (
	// Query selects objects from a view by class, name, and values.
	Query = query.Query
	// CompareOp is a value comparison operator.
	CompareOp = query.CompareOp
	// Pair is one join result.
	Pair = query.Pair
	// FollowStep names one Follow navigation of a multi-step retrieval.
	FollowStep = query.FollowStep
)

// Comparison operators.
const (
	Eq       = query.Eq
	Ne       = query.Ne
	Lt       = query.Lt
	Le       = query.Le
	Gt       = query.Gt
	Ge       = query.Ge
	Contains = query.Contains
)

// NewQuery returns an unrestricted query.
var NewQuery = query.New

// RunPlan evaluates a query over a view like Query.Run and also returns
// the executed access plan.
func RunPlan(q *Query, v View) ([]ID, *Plan, error) {
	return q.RunPlan(v)
}

// ParseCompareOp parses the surface spelling of a comparison operator
// (the inverse of CompareOp.String).
var ParseCompareOp = query.ParseCompareOp

// Follow navigates from objects along an association role pair.
func Follow(v View, from []ID, assoc, fromRole, toRole string) ([]ID, error) {
	return query.Follow(v, []item.ID(from), assoc, fromRole, toRole)
}

// FollowPage applies follow steps to a selected set and pages the final
// result, returning the page and the total before paging.
func FollowPage(v View, ids []ID, steps []FollowStep, limit, offset int) ([]ID, int, error) {
	return query.FollowPage(v, ids, steps, limit, offset)
}

// Join pairs objects connected by existing relationships of an association.
func Join(v View, left, right []ID, assoc, leftRole, rightRole string) ([]Pair, error) {
	return query.Join(v, left, right, assoc, leftRole, rightRole)
}

// Cartesian returns every pair from the two object sets.
func Cartesian(left, right []ID) []Pair {
	return query.Cartesian(left, right)
}
