package seed

import (
	"repro/internal/item"
	"repro/internal/query"
)

// Attribute-index and query-plan re-exports: applications register value
// indexes and inspect chosen access paths through this package.

type (
	// AttrKind selects the index structure: AttrHash answers equality,
	// AttrOrdered answers equality and ranges.
	AttrKind = item.AttrKind
	// AttrKey names an attribute index: a class and a role path below it.
	AttrKey = item.AttrKey
	// AttrSpec is one attribute index registration.
	AttrSpec = item.AttrSpec
	// Plan reports how one query Run executed.
	Plan = query.Plan
	// Access names a query access path.
	Access = query.Access
)

// The attribute index kinds.
const (
	AttrHash    = item.AttrHash
	AttrOrdered = item.AttrOrdered
)

// The query access paths.
const (
	AccessAuto      = query.AccessAuto
	AccessScan      = query.AccessScan
	AccessName      = query.AccessName
	AccessClass     = query.AccessClass
	AccessAttrEq    = query.AccessAttrEq
	AccessAttrRange = query.AccessAttrRange
)

// ParseAttrKind parses "hash" or "ordered".
var ParseAttrKind = item.ParseAttrKind

// ParseAccess parses the surface spelling of an access path.
var ParseAccess = query.ParseAccess

// CreateAttrIndex registers an attribute index on class (qualified name)
// over the role path ("Role" or "Role.Sub"), maintained incrementally per
// generation from then on. Indexes are in-memory acceleration state, not
// part of the persistent log: a reopened or restored database starts
// without them and re-registers what it needs. Re-registering an existing
// key with a different kind rebuilds it as that kind. Followers may create
// indexes too — they accelerate reads and never mutate item state.
func (db *Database) CreateAttrIndex(class, path string, kind AttrKind) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.engine.InTx() {
		return ErrTxOpen
	}
	spec := AttrSpec{Key: AttrKey{Class: class, Path: path}, Kind: kind}
	if err := db.engine.CreateAttrIndex(spec); err != nil {
		return err
	}
	db.gen++ // the next snapshot freezes with the index built
	return nil
}

// DropAttrIndex removes an attribute index registration. Dropping an
// unregistered key reports core.ErrNoAttrIndex.
func (db *Database) DropAttrIndex(class, path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.engine.InTx() {
		return ErrTxOpen
	}
	if err := db.engine.DropAttrIndex(AttrKey{Class: class, Path: path}); err != nil {
		return err
	}
	db.gen++
	return nil
}

// AttrIndexes lists the registered attribute indexes.
func (db *Database) AttrIndexes() []AttrSpec {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.AttrIndexes()
}
