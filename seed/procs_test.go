package seed

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestAttachedProceduresViaSDL declares attached procedures in SDL,
// registers implementations on the database, and verifies veto semantics
// plus replay behaviour (procedures do not re-run during recovery).
func TestAttachedProceduresViaSDL(t *testing.T) {
	sch, err := ParseSDL(`
schema Guarded version 1
class Doc {
    Title: STRING 0..1
    proc titleGuard
}
class Person
assoc Wrote (what: Doc 0..*, who: Person 0..3) {
    proc wroteGuard
}
`)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{Schema: sch, Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}

	var titleCalls, wroteCalls int
	db.RegisterProcedure("titleGuard", func(ev Event) error {
		titleCalls++
		for _, ch := range ev.View.Children(ev.Item, "Title") {
			if o, ok := ev.View.Object(ch); ok && strings.Contains(o.Value.Str(), "forbidden") {
				return errors.New("forbidden title")
			}
		}
		return nil
	})
	db.RegisterProcedure("wroteGuard", func(ev Event) error {
		wroteCalls++
		return nil
	})

	doc := create(t, db, "Doc", "D1")
	person := create(t, db, "Person", "P1")
	if _, err := db.CreateValueObject(doc, "Title", NewString("fine")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelationship("Wrote", map[string]ID{"what": doc, "who": person}); err != nil {
		t.Fatal(err)
	}
	if titleCalls == 0 || wroteCalls == 0 {
		t.Fatalf("procedures not executed: %d/%d", titleCalls, wroteCalls)
	}

	// Veto: the update is undone.
	title, err := db.ResolvePath("D1.Title")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetValue(title, NewString("forbidden phrase")); err == nil {
		t.Fatal("veto did not propagate")
	}
	o, _ := db.View().Object(title)
	if o.Value.Str() != "fine" {
		t.Errorf("vetoed update persisted: %q", o.Value)
	}
	db.Close()

	// Recovery replays without procedures (they were validated on write);
	// no registration is needed to open, and no calls happen.
	db2, err := Open(dir, Options{Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	o2, ok := db2.GetObject("D1")
	if !ok {
		t.Fatal("doc lost")
	}
	_ = o2
	// New updates fail fast until the procedure is registered again.
	if _, err := db2.CreateObject("Doc", "D2"); err == nil {
		t.Error("update without registered procedure accepted")
	}
	db2.RegisterProcedure("titleGuard", func(Event) error { return nil })
	if _, err := db2.CreateObject("Doc", "D2"); err != nil {
		t.Errorf("after registration: %v", err)
	}
}

// TestProcedureSeesCompositeUpdates: procedures attached to a class run
// when sub-objects of its instances change, observing the composed object.
func TestProcedureSeesCompositeUpdates(t *testing.T) {
	db := memDB(t, Figure3Schema())
	// Figure3 has no procs; evolve the schema to attach one to Thing.
	err := db.EvolveSchema(func(s *Schema) error {
		thing, err := s.Class("Thing")
		if err != nil {
			return err
		}
		return thing.AttachProcedure("audit")
	})
	if err != nil {
		t.Fatal(err)
	}
	var seen []ID
	db.RegisterProcedure("audit", func(ev Event) error {
		seen = append(seen, ev.Item)
		return nil
	})
	a := create(t, db, "Data", "A") // Data is-a Thing: procs run via the chain
	if len(seen) != 1 || seen[0] != a {
		t.Fatalf("create event: %v", seen)
	}
	seen = nil
	if _, err := db.CreateValueObject(a, "Description", NewString("x")); err != nil {
		t.Fatal(err)
	}
	// The composite (A) observes the sub-object creation.
	found := false
	for _, id := range seen {
		if id == a {
			found = true
		}
	}
	if !found {
		t.Errorf("composite update not observed: %v", seen)
	}
}
