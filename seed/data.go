package seed

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/item"
	"repro/internal/pattern"
)

// Data manipulation: thin, mutex-guarded wrappers over the engine's
// operational interface. Every operation is validated eagerly; a returned
// error means the database state is unchanged.

// guardWrite returns a helpful error for updates addressed to inherited
// (virtual) items, which are updatable only in the pattern itself.
func (db *Database) guardWrite(ids ...ID) error {
	if db.closed {
		return ErrClosed
	}
	for _, id := range ids {
		if pattern.IsVirtualID(id) {
			return fmt.Errorf("%w (item %d)", ErrInheritedData, id)
		}
	}
	return nil
}

// CreateObject creates an independent object of a top-level class.
func (db *Database) CreateObject(className, name string) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateObject(className, name)
	return db.finish(id, err)
}

// CreatePatternObject creates an independent object marked as a pattern.
func (db *Database) CreatePatternObject(className, name string) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreatePatternObject(className, name)
	return db.finish(id, err)
}

// CreateSubObject creates a dependent object under a parent item in a role.
func (db *Database) CreateSubObject(parent ID, role string) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(parent); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateSubObject(parent, role)
	return db.finish(id, err)
}

// CreateValueObject creates a leaf sub-object carrying a value.
func (db *Database) CreateValueObject(parent ID, role string, v Value) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(parent); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateValueObject(parent, role, v)
	return db.finish(id, err)
}

// SetValue sets (or clears, with Undefined) a value object's value.
func (db *Database) SetValue(id ID, v Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.SetValue(id, v))
	return err
}

// CreateRelationship creates a relationship of the named association.
func (db *Database) CreateRelationship(assoc string, ends map[string]ID) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	all := make([]ID, 0, len(ends))
	for _, o := range ends {
		all = append(all, o)
	}
	if err := db.guardWrite(all...); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateRelationship(assoc, ends)
	return db.finish(id, err)
}

// Delete marks an item and everything depending on it as deleted.
func (db *Database) Delete(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.Delete(id))
	return err
}

// Reclassify moves a data item within its generalization hierarchy.
func (db *Database) Reclassify(id ID, newName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.Reclassify(id, newName))
	return err
}

// MarkPattern turns an independent object or relationship into a pattern.
func (db *Database) MarkPattern(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.MarkPattern(id))
	return err
}

// ClearPattern turns a pattern back into a normal item (no inheritors).
func (db *Database) ClearPattern(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.ClearPattern(id))
	return err
}

// Inherit lets a normal item inherit a pattern; returns the ID of the
// inherits-relationship.
func (db *Database) Inherit(patternID, inheritorID ID) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(patternID, inheritorID); err != nil {
		return NoID, err
	}
	id, err := db.engine.Inherit(patternID, inheritorID)
	return db.finish(id, err)
}

// Disinherit removes the inherits-relationship between a pattern and an
// inheritor.
func (db *Database) Disinherit(patternID, inheritorID ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(patternID, inheritorID); err != nil {
		return err
	}
	raw := db.engine.View()
	for _, rid := range raw.RelationshipsOf(inheritorID) {
		r, ok := raw.Relationship(rid)
		if ok && r.Inherits &&
			r.End(item.InheritsPatternRole) == patternID &&
			r.End(item.InheritsInheritorRole) == inheritorID {
			_, err := db.finish(rid, db.engine.Delete(rid))
			return err
		}
	}
	return fmt.Errorf("seed: item %d does not inherit pattern %d", inheritorID, patternID)
}

// Begin opens a transaction: subsequent operations commit or roll back as a
// unit. Consistency is still checked per operation.
func (db *Database) Begin() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.engine.Begin()
}

// Commit makes the open transaction permanent.
func (db *Database) Commit() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.engine.Commit(); err != nil {
		return err
	}
	db.gen++
	// Durability is the storage layer's business: under SyncGroupCommit
	// every journal append was already fsynced before it returned; under
	// SyncOnRequest durability waits for Sync/SaveVersion/Compact/Close.
	return nil
}

// Rollback undoes the open transaction.
func (db *Database) Rollback() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.engine.Rollback(); err != nil {
		return err
	}
	db.gen++
	return nil
}

// finish bumps the mutation generation on success.
func (db *Database) finish(id ID, err error) (ID, error) {
	if err != nil {
		return NoID, err
	}
	db.gen++
	if cerr := db.maybeCompact(); cerr != nil {
		return id, cerr
	}
	return id, nil
}

// ---- Retrieval ----

// View returns the user-facing view of the current state: deleted items
// and patterns are invisible; inherited pattern data appears in the context
// of the inheritors. The view is cached until the next mutation and is safe
// for concurrent use: every method call synchronizes with mutations.
func (db *Database) View() View { return lockedView{db: db, user: true} }

func (db *Database) userViewLocked() *pattern.Spliced {
	if db.splice == nil || db.spliceGen != db.gen {
		db.splice = pattern.NewSpliced(db.engine.View())
		db.spliceGen = db.gen
	}
	return db.splice
}

// RawView returns the administrative view: patterns visible, inherited data
// not spliced. Like View, it synchronizes per method call.
func (db *Database) RawView() View { return lockedView{db: db} }

// lockedView adapts the engine's (or the spliced) view to concurrent use
// by taking the database mutex around every read.
type lockedView struct {
	db   *Database
	user bool
}

func (v lockedView) inner() View {
	if v.user {
		return v.db.userViewLocked()
	}
	return v.db.engine.View()
}

// Schema implements View.
func (v lockedView) Schema() *Schema {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.db.engine.Schema()
}

// Object implements View.
func (v lockedView) Object(id ID) (Object, bool) {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.inner().Object(id)
}

// Relationship implements View.
func (v lockedView) Relationship(id ID) (Relationship, bool) {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.inner().Relationship(id)
}

// ObjectByName implements View.
func (v lockedView) ObjectByName(name string) (ID, bool) {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.inner().ObjectByName(name)
}

// Children implements View.
func (v lockedView) Children(parent ID, role string) []ID {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.inner().Children(parent, role)
}

// RelationshipsOf implements View.
func (v lockedView) RelationshipsOf(obj ID) []ID {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.inner().RelationshipsOf(obj)
}

// Objects implements View.
func (v lockedView) Objects() []ID {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.inner().Objects()
}

// Relationships implements View.
func (v lockedView) Relationships() []ID {
	v.db.mu.Lock()
	defer v.db.mu.Unlock()
	return v.inner().Relationships()
}

// Origin reports the provenance of a virtual (inherited) item in the
// current user view.
func (db *Database) Origin(id ID) (source, patternRoot, inheritor ID, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	org, ok := db.userViewLocked().Origin(id)
	if !ok {
		return NoID, NoID, NoID, false
	}
	return org.Source, org.Pattern, org.Inheritor, true
}

// GetObject resolves an independent object by name in the user view —
// SEED's "simple retrieval by name".
func (db *Database) GetObject(name string) (Object, bool) {
	v := db.View()
	id, ok := v.ObjectByName(name)
	if !ok {
		return Object{}, false
	}
	return v.Object(id)
}

// ResolvePath navigates a qualified name ("Alarms.Text[0].Selector") in the
// user view.
func (db *Database) ResolvePath(path string) (ID, error) {
	p, err := ParsePath(path)
	if err != nil {
		return NoID, err
	}
	id, ok := item.Resolve(db.View(), p)
	if !ok {
		return NoID, fmt.Errorf("seed: no object at path %q", path)
	}
	return id, nil
}

// ResolvePathRaw navigates a qualified name in the raw (administrative)
// view, where patterns are visible — the way to address a pattern's
// sub-objects for updates, since pattern information is updatable only in
// the pattern itself.
func (db *Database) ResolvePathRaw(path string) (ID, error) {
	p, err := ParsePath(path)
	if err != nil {
		return NoID, err
	}
	id, ok := item.Resolve(db.RawView(), p)
	if !ok {
		return NoID, fmt.Errorf("seed: no object at path %q", path)
	}
	return id, nil
}

// PathOf reconstructs an object's qualified name in the user view.
func (db *Database) PathOf(id ID) (Path, bool) {
	return item.PathOf(db.View(), id)
}

// Completeness evaluates every completeness rule over the user view: the
// formal detection of incomplete information.
func (db *Database) Completeness() []Finding {
	return consistency.CheckCompleteness(db.View())
}

// CompletenessOf evaluates the completeness rules for one item.
func (db *Database) CompletenessOf(id ID) []Finding {
	return consistency.CheckItemCompleteness(db.View(), id)
}
