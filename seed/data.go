package seed

import (
	"fmt"
	"sync"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/pattern"
)

// Data manipulation: thin, write-locked wrappers over the engine's
// operational interface, plus snapshot retrieval. Every operation is
// validated eagerly; a returned error means the database state is
// unchanged. Mutations serialize on the write lock; retrieval pins
// immutable snapshots and runs in parallel (see DESIGN.md section 6).

// guardWrite returns a helpful error for updates addressed to inherited
// (virtual) items, which are updatable only in the pattern itself.
//
// seed:locked-caller — every mutation entry point calls it under db.mu.
func (db *Database) guardWrite(ids ...ID) error {
	if db.closed {
		return ErrClosed
	}
	if db.replica {
		return ErrNotPrimary
	}
	for _, id := range ids {
		if pattern.IsVirtualID(id) {
			return fmt.Errorf("%w (item %d)", ErrInheritedData, id)
		}
	}
	return nil
}

// CreateObject creates an independent object of a top-level class.
func (db *Database) CreateObject(className, name string) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateObject(className, name)
	return db.finish(id, err)
}

// CreatePatternObject creates an independent object marked as a pattern.
func (db *Database) CreatePatternObject(className, name string) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreatePatternObject(className, name)
	return db.finish(id, err)
}

// CreateSubObject creates a dependent object under a parent item in a role.
func (db *Database) CreateSubObject(parent ID, role string) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(parent); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateSubObject(parent, role)
	return db.finish(id, err)
}

// CreateValueObject creates a leaf sub-object carrying a value.
func (db *Database) CreateValueObject(parent ID, role string, v Value) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(parent); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateValueObject(parent, role, v)
	return db.finish(id, err)
}

// SetValue sets (or clears, with Undefined) a value object's value.
func (db *Database) SetValue(id ID, v Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.SetValue(id, v))
	return err
}

// CreateRelationship creates a relationship of the named association.
func (db *Database) CreateRelationship(assoc string, ends map[string]ID) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	all := make([]ID, 0, len(ends))
	for _, o := range ends {
		all = append(all, o)
	}
	if err := db.guardWrite(all...); err != nil {
		return NoID, err
	}
	id, err := db.engine.CreateRelationship(assoc, ends)
	return db.finish(id, err)
}

// Delete marks an item and everything depending on it as deleted.
func (db *Database) Delete(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.Delete(id))
	return err
}

// Reclassify moves a data item within its generalization hierarchy.
func (db *Database) Reclassify(id ID, newName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.Reclassify(id, newName))
	return err
}

// MarkPattern turns an independent object or relationship into a pattern.
func (db *Database) MarkPattern(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.MarkPattern(id))
	return err
}

// ClearPattern turns a pattern back into a normal item (no inheritors).
func (db *Database) ClearPattern(id ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(id); err != nil {
		return err
	}
	_, err := db.finish(id, db.engine.ClearPattern(id))
	return err
}

// Inherit lets a normal item inherit a pattern; returns the ID of the
// inherits-relationship.
func (db *Database) Inherit(patternID, inheritorID ID) (ID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(patternID, inheritorID); err != nil {
		return NoID, err
	}
	id, err := db.engine.Inherit(patternID, inheritorID)
	return db.finish(id, err)
}

// Disinherit removes the inherits-relationship between a pattern and an
// inheritor.
func (db *Database) Disinherit(patternID, inheritorID ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardWrite(patternID, inheritorID); err != nil {
		return err
	}
	raw := db.engine.View()
	for _, rid := range raw.RelationshipsOf(inheritorID) {
		r, ok := raw.Relationship(rid)
		if ok && r.Inherits &&
			r.End(item.InheritsPatternRole) == patternID &&
			r.End(item.InheritsInheritorRole) == inheritorID {
			_, err := db.finish(rid, db.engine.Delete(rid))
			return err
		}
	}
	return fmt.Errorf("seed: item %d does not inherit pattern %d", inheritorID, patternID)
}

// Tx is one staged transaction: a private batch of validated updates that
// becomes visible (and durable) atomically at Commit. Any number of
// transactions may be staged concurrently; transactions with disjoint write
// sets commit independently, overlapping ones fail with ErrTxConflict at
// the first overlapping operation (retryable: roll back and re-stage). A Tx
// is not safe for concurrent use by multiple goroutines — one client, one
// transaction, one goroutine, which is exactly the server's check-in shape.
type Tx struct {
	db   *Database
	core *core.Tx
	done bool

	spliceMu  sync.Mutex       // several read-locked resolvers may race on the cache
	splice    *pattern.Spliced // cached user view over the staged state
	spliceSeq uint64           // transaction op counter the cache was built at
	spliceGen uint64           // database generation the cache was built at
}

// BeginTx opens a new staged transaction. Begin pins the current snapshot:
// while transactions stage, View and RawView keep serving the last
// committed state — readers never observe a half-applied batch.
func (db *Database) BeginTx() (*Tx, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.replica {
		return nil, ErrNotPrimary
	}
	tx := &Tx{db: db, core: db.engine.BeginTx()}
	// Freeze any pending auto-committed changes now: once staging starts,
	// the live maps may hold uncommitted state for the items this
	// transaction claims, and a lazy freeze must never read those.
	db.snapshotLocked()
	return tx, nil
}

// Done reports whether the transaction was committed or rolled back.
func (tx *Tx) Done() bool {
	tx.db.mu.RLock()
	defer tx.db.mu.RUnlock()
	return tx.done
}

// apply runs one staged mutation attributed to this transaction.
//
// seed:locks-callback(db.mu) — op closures run under the write lock
// taken below, so guardedby treats their field accesses as guarded.
func (tx *Tx) apply(guard []ID, op func() (ID, error)) (ID, error) {
	db := tx.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.done {
		return NoID, ErrTxDone
	}
	if err := db.guardWrite(guard...); err != nil {
		return NoID, err
	}
	db.engine.SetActiveTx(tx.core)
	defer db.engine.ClearActiveTx()
	return op()
}

// CreateObject stages creation of an independent object.
func (tx *Tx) CreateObject(className, name string) (ID, error) {
	return tx.apply(nil, func() (ID, error) { return tx.db.engine.CreateObject(className, name) })
}

// CreateSubObject stages creation of a dependent object.
func (tx *Tx) CreateSubObject(parent ID, role string) (ID, error) {
	return tx.apply([]ID{parent}, func() (ID, error) { return tx.db.engine.CreateSubObject(parent, role) })
}

// CreateValueObject stages creation of a leaf sub-object carrying a value.
func (tx *Tx) CreateValueObject(parent ID, role string, v Value) (ID, error) {
	return tx.apply([]ID{parent}, func() (ID, error) { return tx.db.engine.CreateValueObject(parent, role, v) })
}

// SetValue stages a value update.
func (tx *Tx) SetValue(id ID, v Value) error {
	_, err := tx.apply([]ID{id}, func() (ID, error) { return id, tx.db.engine.SetValue(id, v) })
	return err
}

// CreateRelationship stages a relationship of the named association.
func (tx *Tx) CreateRelationship(assoc string, ends map[string]ID) (ID, error) {
	all := make([]ID, 0, len(ends))
	for _, o := range ends {
		all = append(all, o)
	}
	return tx.apply(all, func() (ID, error) { return tx.db.engine.CreateRelationship(assoc, ends) })
}

// Delete stages a deletion cascade.
func (tx *Tx) Delete(id ID) error {
	_, err := tx.apply([]ID{id}, func() (ID, error) { return id, tx.db.engine.Delete(id) })
	return err
}

// Reclassify stages a re-classification.
func (tx *Tx) Reclassify(id ID, newName string) error {
	_, err := tx.apply([]ID{id}, func() (ID, error) { return id, tx.db.engine.Reclassify(id, newName) })
	return err
}

// ResolvePath navigates a qualified name in the transaction's user view:
// resolution sees the transaction's own staged effects (a batch can address
// items it created earlier) but never another transaction's.
func (tx *Tx) ResolvePath(path string) (ID, error) {
	p, err := ParsePath(path)
	if err != nil {
		return NoID, err
	}
	db := tx.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	if tx.done {
		return NoID, ErrTxDone
	}
	id, ok := item.Resolve(tx.viewLocked(), p)
	if !ok {
		return NoID, fmt.Errorf("seed: no object at path %q", path)
	}
	return id, nil
}

// viewLocked returns the user-facing spliced view over the live engine
// state, cached per (transaction op counter, database generation) so a
// batch of path resolutions rebuilds the splice only after a change. The
// live state may hold other transactions' staged items, but their write
// sets are disjoint from this transaction's by the claim discipline, so
// resolution within this transaction's domain is unaffected. Callers hold
// db.mu in either mode and must not let the view escape the lock.
//
// seed:locked-caller
func (tx *Tx) viewLocked() View {
	tx.spliceMu.Lock()
	defer tx.spliceMu.Unlock()
	seq, gen := tx.core.Seq(), tx.db.gen
	if tx.splice == nil || tx.spliceSeq != seq || tx.spliceGen != gen {
		tx.splice = pattern.NewSpliced(tx.db.engine.View())
		tx.spliceSeq, tx.spliceGen = seq, gen
	}
	return tx.splice
}

// Commit makes the staged batch permanent: it publishes atomically into a
// new snapshot generation (the mutation generation advances once for the
// whole batch) and appends the batch contiguously to the write-ahead log.
// Under SyncGroupCommit the durability wait happens after the database
// lock is released, so concurrent commits coalesce into shared fsyncs.
func (tx *Tx) Commit() error {
	db := tx.db
	db.mu.Lock()
	if tx.done {
		db.mu.Unlock()
		return ErrTxDone
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	tx.done = true
	if db.legacy == tx {
		db.legacy = nil
	}
	records, err := db.engine.CommitTx(tx.core)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	// The batch is applied in memory: advance the generation even if
	// journaling fails below, so the snapshot cache cannot keep serving
	// the pre-transaction state.
	db.gen++
	wait, jerr := db.journalBatchLocked(records)
	if jerr == nil {
		// Compaction deferred by in-transaction operations runs now that
		// the batch is in the log — best-effort: the batch IS committed,
		// so a compaction failure (which leaves the log intact and retries
		// on the next trigger) must not read as a failed commit, or
		// callers would re-apply an already-applied batch.
		_ = db.maybeCompact()
	}
	db.mu.Unlock()
	if jerr != nil {
		return jerr
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// Rollback undoes the staged batch. Rolling back a finished transaction is
// a no-op, so cleanup paths can call it unconditionally.
func (tx *Tx) Rollback() error {
	db := tx.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.done {
		return nil
	}
	tx.done = true
	if db.legacy == tx {
		db.legacy = nil
	}
	if err := db.engine.RollbackTx(tx.core); err != nil {
		return err
	}
	// Conservative: the touched items are back in their pre-transaction
	// state; bumping the generation re-freezes them from the live maps.
	db.gen++
	return nil
}

// Begin opens the legacy global transaction: subsequent Database-level
// operations commit or roll back as a unit, exactly as before concurrent
// transactions existed. It is a thin wrapper over BeginTx; the handle is
// held by the database and finished by Commit or Rollback.
func (db *Database) Begin() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.replica {
		return ErrNotPrimary
	}
	if err := db.engine.Begin(); err != nil {
		return err
	}
	db.legacy = &Tx{db: db, core: db.engine.LegacyTx()}
	db.snapshotLocked()
	return nil
}

// Commit makes the legacy transaction permanent (see Tx.Commit).
func (db *Database) Commit() error {
	db.mu.Lock()
	lt := db.legacy
	db.mu.Unlock()
	if lt == nil {
		return fmt.Errorf("%w: no transaction open", core.ErrTxState)
	}
	return lt.Commit()
}

// Rollback undoes the legacy transaction.
func (db *Database) Rollback() error {
	db.mu.Lock()
	lt := db.legacy
	db.mu.Unlock()
	if lt == nil {
		return fmt.Errorf("%w: no transaction open", core.ErrTxState)
	}
	return lt.Rollback()
}

// finish bumps the mutation generation on success. Inside the legacy
// transaction the generation does not move — snapshot views keep showing
// the last committed state until Commit advances it once for the whole
// batch — and compaction is deferred to Commit: a snapshot written
// mid-transaction would persist uncommitted operations and truncate the
// log before their buffered journal records exist.
//
// seed:locked-caller — runs at the tail of every mutation, under db.mu.
func (db *Database) finish(id ID, err error) (ID, error) {
	if err != nil {
		return NoID, err
	}
	if db.legacy != nil {
		return id, nil
	}
	db.gen++
	if cerr := db.maybeCompact(); cerr != nil {
		return id, cerr
	}
	return id, nil
}

// ---- Retrieval ----

// snapshotCache is one immutable snapshot of a mutation generation: the
// frozen raw view plus the lazily built user (pattern-spliced) view over
// it. Both are safe for unsynchronized concurrent use and stay consistent
// while mutations proceed on the engine.
type snapshotCache struct {
	gen      uint64
	raw      View // core.FrozenView of the generation
	userOnce sync.Once
	user     *pattern.Spliced
}

// userView builds the spliced view on first use. The base is frozen, so
// the splice is consistent no matter when it is built.
func (c *snapshotCache) userView() *pattern.Spliced {
	c.userOnce.Do(func() { c.user = pattern.NewSpliced(c.raw) })
	return c.user
}

// snapshotLocked returns the snapshot of the current generation, building
// and caching it if necessary. Callers hold db.mu in either mode — the
// generation cannot advance while they do. While a transaction is open the
// generation does not advance either, so the snapshot pinned by Begin keeps
// serving readers the last committed state until Commit.
//
// seed:locked-caller
func (db *Database) snapshotLocked() *snapshotCache {
	if c := db.snap.Load(); c != nil && c.gen == db.gen {
		return c
	}
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if c := db.snap.Load(); c != nil && c.gen == db.gen {
		return c
	}
	c := &snapshotCache{gen: db.gen, raw: db.engine.FrozenView()}
	db.snap.Store(c)
	return c
}

// View returns the user-facing view of the current state: deleted items
// and patterns are invisible; inherited pattern data appears in the context
// of the inheritors. The view is an immutable snapshot pinned at the time
// of the call: it acquires the lock once, and every subsequent method call
// is lock-free and consistent — a walk over the view can never observe a
// half-applied batch. Snapshots are cached per mutation generation, so
// repeated calls between mutations share one copy.
func (db *Database) View() View {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snapshotLocked().userView()
}

// RawView returns the administrative view: patterns visible, inherited data
// not spliced. Like View, it is an immutable snapshot pinned at call time.
func (db *Database) RawView() View {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snapshotLocked().raw
}

// updateViewLocked returns the view path resolution for updates runs
// against: normally the current snapshot, but while the legacy transaction
// is open a view over the live engine state, so that a batch can address
// items it created earlier in the same transaction (per-Tx resolution goes
// through Tx.ResolvePath). Callers hold db.mu and must not let a live view
// escape the lock.
//
// seed:locked-caller
func (db *Database) updateViewLocked(user bool) View {
	if lt := db.legacy; lt != nil {
		if !user {
			return db.engine.View()
		}
		return lt.viewLocked()
	}
	if user {
		return db.snapshotLocked().userView()
	}
	return db.snapshotLocked().raw
}

// Origin reports the provenance of a virtual (inherited) item in the
// current user view.
func (db *Database) Origin(id ID) (source, patternRoot, inheritor ID, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	org, ok := db.snapshotLocked().userView().Origin(id)
	if !ok {
		return NoID, NoID, NoID, false
	}
	return org.Source, org.Pattern, org.Inheritor, true
}

// GetObject resolves an independent object by name in the user view —
// SEED's "simple retrieval by name".
func (db *Database) GetObject(name string) (Object, bool) {
	v := db.View()
	id, ok := v.ObjectByName(name)
	if !ok {
		return Object{}, false
	}
	return v.Object(id)
}

// ResolvePath navigates a qualified name ("Alarms.Text[0].Selector") in the
// user view. Inside an open transaction resolution sees the transaction's
// own effects, so a batch can address items it created earlier.
func (db *Database) ResolvePath(path string) (ID, error) {
	p, err := ParsePath(path)
	if err != nil {
		return NoID, err
	}
	db.mu.RLock()
	id, ok := item.Resolve(db.updateViewLocked(true), p)
	db.mu.RUnlock()
	if !ok {
		return NoID, fmt.Errorf("seed: no object at path %q", path)
	}
	return id, nil
}

// ResolvePathRaw navigates a qualified name in the raw (administrative)
// view, where patterns are visible — the way to address a pattern's
// sub-objects for updates, since pattern information is updatable only in
// the pattern itself.
func (db *Database) ResolvePathRaw(path string) (ID, error) {
	p, err := ParsePath(path)
	if err != nil {
		return NoID, err
	}
	db.mu.RLock()
	id, ok := item.Resolve(db.updateViewLocked(false), p)
	db.mu.RUnlock()
	if !ok {
		return NoID, fmt.Errorf("seed: no object at path %q", path)
	}
	return id, nil
}

// PathOf reconstructs an object's qualified name in the user view.
func (db *Database) PathOf(id ID) (Path, bool) {
	return item.PathOf(db.View(), id)
}

// Completeness evaluates every completeness rule over the user view: the
// formal detection of incomplete information.
func (db *Database) Completeness() []Finding {
	return consistency.CheckCompleteness(db.View())
}

// CompletenessOf evaluates the completeness rules for one item.
func (db *Database) CompletenessOf(id ID) []Finding {
	return consistency.CheckItemCompleteness(db.View(), id)
}
