package seed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/sdl"
	"repro/internal/storage"
	"repro/internal/version"
)

// Snapshot format (the payload handed to storage.Store.Compact):
//
//	format   uvarint (1)
//	nextID   uvarint
//	schemas  count + SDL text per schema version
//	objects  count + item encodings (against the latest schema)
//	rels     count + item encodings
//	dirty    count + IDs
//	versions the version tree (per-node deltas encoded against the schema
//	         version each node was created under)

const snapshotFormat = 1

// compactLocked rewrites the log as one snapshot record.
//
// seed:locked-caller
func (db *Database) compactLocked() error {
	payload, err := db.encodeSnapshot()
	if err != nil {
		return err
	}
	return db.store.Compact(payload)
}

// encodeSnapshot serializes the full database state.
//
// seed:locked-caller
func (db *Database) encodeSnapshot() ([]byte, error) {
	e := storage.NewEncoder(nil)
	e.Uint64(snapshotFormat)
	e.Uint64(uint64(db.engine.NextID()))
	e.Int(len(db.schemas))
	for _, sch := range db.schemas {
		e.String(sdl.Render(sch))
	}
	objs, rels := db.engine.CaptureAll()
	e.Int(len(objs))
	for i := range objs {
		item.EncodeObject(e, &objs[i])
	}
	e.Int(len(rels))
	for i := range rels {
		item.EncodeRelationship(e, &rels[i])
	}
	dirty := db.engine.DirtyIDs()
	e.Int(len(dirty))
	for _, id := range dirty {
		e.Uint64(uint64(id))
	}
	db.vers.Encode(e)
	return e.Bytes(), nil
}

// loadSnapshot rebuilds engine, schemas and version tree from a snapshot
// record.
//
// seed:locked-caller — called during pre-publication recovery.
func (db *Database) loadSnapshot(payload []byte) error {
	d := storage.NewDecoder(payload)
	format, err := d.Uint64()
	if err != nil {
		return err
	}
	if format != snapshotFormat {
		return fmt.Errorf("seed: unsupported snapshot format %d", format)
	}
	nextID, err := d.Uint64()
	if err != nil {
		return err
	}
	schemaCount, err := d.Int()
	if err != nil {
		return err
	}
	if schemaCount < 1 {
		return fmt.Errorf("seed: snapshot without schemas")
	}
	db.schemas = db.schemas[:0]
	for i := 0; i < schemaCount; i++ {
		text, err := d.String()
		if err != nil {
			return err
		}
		sch, err := sdl.Parse(text)
		if err != nil {
			return fmt.Errorf("seed: snapshot schema %d: %w", i+1, err)
		}
		if sch.Version() != i+1 {
			return fmt.Errorf("seed: snapshot schema order: got version %d at position %d", sch.Version(), i+1)
		}
		db.schemas = append(db.schemas, sch)
	}
	latest := db.schemas[len(db.schemas)-1]
	en, err := core.NewEngine(latest)
	if err != nil {
		return err
	}
	en.BeginReplay()

	objCount, err := d.Int()
	if err != nil {
		return err
	}
	objs := make([]item.Object, objCount)
	for i := range objs {
		objs[i], err = item.DecodeObject(d, latest)
		if err != nil {
			return err
		}
	}
	relCount, err := d.Int()
	if err != nil {
		return err
	}
	rels := make([]item.Relationship, relCount)
	for i := range rels {
		rels[i], err = item.DecodeRelationship(d, latest)
		if err != nil {
			return err
		}
	}
	en.Restore(objs, rels)
	en.ForceNextID(item.ID(nextID))

	dirtyCount, err := d.Int()
	if err != nil {
		return err
	}
	dirty := make([]item.ID, dirtyCount)
	for i := range dirty {
		id, err := d.Uint64()
		if err != nil {
			return err
		}
		dirty[i] = item.ID(id)
	}
	en.RestoreDirty(dirty)

	vers, err := version.Decode(d, func(ver int) (*Schema, error) {
		return db.schemaAt(ver)
	})
	if err != nil {
		return err
	}
	db.engine = en
	db.vers = vers
	return nil
}
