package seed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/storage"
	"repro/internal/version"
)

// Snapshot format (the payload handed to storage.Store.Compact):
//
//	format   uvarint (2)
//	nextID   uvarint
//	schemas  count + SDL text per schema version
//	symbols  the symbol table: count + strings, serialized once — item
//	         encodings reference strings by uvarint symbol
//	items    blob: objects count + sym-coded encodings (against the latest
//	         schema), then rels count + sym-coded encodings
//	dirty    count + IDs
//	versions the version tree (per-node deltas encoded against the schema
//	         version each node was created under)
//
// Format 1 (inline strings per item, no symbol table) is still loaded for
// databases compacted before the columnar store landed.

const (
	snapshotFormat   = 2
	snapshotFormatV1 = 1
)

// compactLocked rewrites the log as one snapshot record, then rebuilds the
// engine's intern tables from the live rows.
//
// seed:locked-caller
func (db *Database) compactLocked() error {
	payload, err := db.encodeSnapshot()
	if err != nil {
		return err
	}
	if err := db.store.Compact(payload); err != nil {
		return err
	}
	db.rebuildStoreLocked()
	return nil
}

// rebuildStoreLocked re-interns the engine's state into a fresh store. The
// columnar store's symbol/value intern tables are append-only between
// rebuilds — a long churn of unique short values grows them without bound
// (only live rows keep the table entries referenced) — so every compaction
// pays one capture+restore to shed the dead entries, on the primary and on
// any database that compacts during catch-up. Compact already refuses to
// run inside a transaction, which is the one state Restore cannot handle;
// readers keep their pinned snapshots and rebuild from the fresh store on
// the next view.
//
// seed:locked-caller
func (db *Database) rebuildStoreLocked() {
	en := db.engine
	next := en.NextID()
	dirty := en.DirtyIDs()
	objs, rels := en.CaptureAll()
	en.Restore(objs, rels)
	en.RestoreDirty(dirty)
	en.ForceNextID(next)
	db.gen++
}

// SymbolCount reports the engine's total interned symbols (class, name and
// short-value tables; 0 on the map-store ablation and on a follower before
// its first bootstrap). The churn regression test gates on it shrinking
// across a Compact.
func (db *Database) SymbolCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.engine == nil {
		return 0
	}
	return db.engine.SymbolCount()
}

// encodeSnapshot serializes the full database state.
//
// seed:locked-caller
func (db *Database) encodeSnapshot() ([]byte, error) {
	e := storage.NewEncoder(nil)
	e.Uint64(snapshotFormat)
	e.Uint64(uint64(db.engine.NextID()))
	e.Int(len(db.schemas))
	for _, sch := range db.schemas {
		e.String(sdl.Render(sch))
	}
	// Items are sym-coded into a side buffer first, so the symbol table they
	// populate can be serialized ahead of them.
	objs, rels := db.engine.CaptureAll()
	tab := item.NewSymTab()
	be := storage.NewEncoder(nil)
	be.Int(len(objs))
	for i := range objs {
		item.EncodeObjectSym(be, tab, &objs[i])
	}
	be.Int(len(rels))
	for i := range rels {
		item.EncodeRelationshipSym(be, tab, &rels[i])
	}
	item.EncodeSymTab(e, tab)
	e.Blob(be.Bytes())
	dirty := db.engine.DirtyIDs()
	e.Int(len(dirty))
	for _, id := range dirty {
		e.Uint64(uint64(id))
	}
	db.vers.Encode(e)
	return e.Bytes(), nil
}

// loadSnapshot rebuilds engine, schemas and version tree from a snapshot
// record.
//
// seed:locked-caller — called during pre-publication recovery.
func (db *Database) loadSnapshot(payload []byte) error {
	d := storage.NewDecoder(payload)
	format, err := d.Uint64()
	if err != nil {
		return err
	}
	if format != snapshotFormat && format != snapshotFormatV1 {
		return fmt.Errorf("seed: unsupported snapshot format %d", format)
	}
	nextID, err := d.Uint64()
	if err != nil {
		return err
	}
	schemaCount, err := d.Int()
	if err != nil {
		return err
	}
	if schemaCount < 1 {
		return fmt.Errorf("seed: snapshot without schemas")
	}
	db.schemas = db.schemas[:0]
	for i := 0; i < schemaCount; i++ {
		text, err := d.String()
		if err != nil {
			return err
		}
		sch, err := sdl.Parse(text)
		if err != nil {
			return fmt.Errorf("seed: snapshot schema %d: %w", i+1, err)
		}
		if sch.Version() != i+1 {
			return fmt.Errorf("seed: snapshot schema order: got version %d at position %d", sch.Version(), i+1)
		}
		db.schemas = append(db.schemas, sch)
	}
	latest := db.schemas[len(db.schemas)-1]
	en, err := core.NewEngine(latest)
	if err != nil {
		return err
	}
	en.BeginReplay()

	var objs []item.Object
	var rels []item.Relationship
	if format == snapshotFormatV1 {
		objs, rels, err = decodeItemsV1(d, latest)
	} else {
		objs, rels, err = decodeItemsV2(d, latest)
	}
	if err != nil {
		return err
	}
	en.Restore(objs, rels)
	en.ForceNextID(item.ID(nextID))

	dirtyCount, err := d.Int()
	if err != nil {
		return err
	}
	dirty := make([]item.ID, dirtyCount)
	for i := range dirty {
		id, err := d.Uint64()
		if err != nil {
			return err
		}
		dirty[i] = item.ID(id)
	}
	en.RestoreDirty(dirty)

	vers, err := version.Decode(d, func(ver int) (*Schema, error) {
		return db.schemaAt(ver)
	})
	if err != nil {
		return err
	}
	db.engine = en
	db.vers = vers
	return nil
}

// decodeItemsV1 reads the format-1 item sections: inline strings per item.
func decodeItemsV1(d *storage.Decoder, latest *schema.Schema) ([]item.Object, []item.Relationship, error) {
	objCount, err := d.Int()
	if err != nil {
		return nil, nil, err
	}
	objs := make([]item.Object, objCount)
	for i := range objs {
		if objs[i], err = item.DecodeObject(d, latest); err != nil {
			return nil, nil, err
		}
	}
	relCount, err := d.Int()
	if err != nil {
		return nil, nil, err
	}
	rels := make([]item.Relationship, relCount)
	for i := range rels {
		if rels[i], err = item.DecodeRelationship(d, latest); err != nil {
			return nil, nil, err
		}
	}
	return objs, rels, nil
}

// decodeItemsV2 reads the format-2 item sections: the symbol table, then the
// sym-coded items blob.
func decodeItemsV2(d *storage.Decoder, latest *schema.Schema) ([]item.Object, []item.Relationship, error) {
	strs, err := item.DecodeSymTab(d)
	if err != nil {
		return nil, nil, err
	}
	body, err := d.Blob()
	if err != nil {
		return nil, nil, err
	}
	bd := storage.NewDecoder(body)
	objCount, err := bd.Int()
	if err != nil {
		return nil, nil, err
	}
	objs := make([]item.Object, objCount)
	for i := range objs {
		if objs[i], err = item.DecodeObjectSym(bd, strs, latest); err != nil {
			return nil, nil, err
		}
	}
	relCount, err := bd.Int()
	if err != nil {
		return nil, nil, err
	}
	rels := make([]item.Relationship, relCount)
	for i := range rels {
		if rels[i], err = item.DecodeRelationshipSym(bd, strs, latest); err != nil {
			return nil, nil, err
		}
	}
	return objs, rels, nil
}
