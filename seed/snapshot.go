package seed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/storage"
	"repro/internal/version"
)

// Snapshot format (the payload handed to storage.Store.Compact):
//
//	format   uvarint (2)
//	nextID   uvarint
//	schemas  count + SDL text per schema version
//	symbols  the symbol table: count + strings, serialized once — item
//	         encodings reference strings by uvarint symbol
//	items    blob: objects count + sym-coded encodings (against the latest
//	         schema), then rels count + sym-coded encodings
//	dirty    count + IDs
//	versions the version tree (per-node deltas encoded against the schema
//	         version each node was created under)
//
// Format 1 (inline strings per item, no symbol table) is still loaded for
// databases compacted before the columnar store landed.

const (
	snapshotFormat   = 2
	snapshotFormatV1 = 1
)

// compactLocked rewrites the log as one snapshot record.
//
// seed:locked-caller
func (db *Database) compactLocked() error {
	payload, err := db.encodeSnapshot()
	if err != nil {
		return err
	}
	return db.store.Compact(payload)
}

// encodeSnapshot serializes the full database state.
//
// seed:locked-caller
func (db *Database) encodeSnapshot() ([]byte, error) {
	e := storage.NewEncoder(nil)
	e.Uint64(snapshotFormat)
	e.Uint64(uint64(db.engine.NextID()))
	e.Int(len(db.schemas))
	for _, sch := range db.schemas {
		e.String(sdl.Render(sch))
	}
	// Items are sym-coded into a side buffer first, so the symbol table they
	// populate can be serialized ahead of them.
	objs, rels := db.engine.CaptureAll()
	tab := item.NewSymTab()
	be := storage.NewEncoder(nil)
	be.Int(len(objs))
	for i := range objs {
		item.EncodeObjectSym(be, tab, &objs[i])
	}
	be.Int(len(rels))
	for i := range rels {
		item.EncodeRelationshipSym(be, tab, &rels[i])
	}
	item.EncodeSymTab(e, tab)
	e.Blob(be.Bytes())
	dirty := db.engine.DirtyIDs()
	e.Int(len(dirty))
	for _, id := range dirty {
		e.Uint64(uint64(id))
	}
	db.vers.Encode(e)
	return e.Bytes(), nil
}

// loadSnapshot rebuilds engine, schemas and version tree from a snapshot
// record.
//
// seed:locked-caller — called during pre-publication recovery.
func (db *Database) loadSnapshot(payload []byte) error {
	d := storage.NewDecoder(payload)
	format, err := d.Uint64()
	if err != nil {
		return err
	}
	if format != snapshotFormat && format != snapshotFormatV1 {
		return fmt.Errorf("seed: unsupported snapshot format %d", format)
	}
	nextID, err := d.Uint64()
	if err != nil {
		return err
	}
	schemaCount, err := d.Int()
	if err != nil {
		return err
	}
	if schemaCount < 1 {
		return fmt.Errorf("seed: snapshot without schemas")
	}
	db.schemas = db.schemas[:0]
	for i := 0; i < schemaCount; i++ {
		text, err := d.String()
		if err != nil {
			return err
		}
		sch, err := sdl.Parse(text)
		if err != nil {
			return fmt.Errorf("seed: snapshot schema %d: %w", i+1, err)
		}
		if sch.Version() != i+1 {
			return fmt.Errorf("seed: snapshot schema order: got version %d at position %d", sch.Version(), i+1)
		}
		db.schemas = append(db.schemas, sch)
	}
	latest := db.schemas[len(db.schemas)-1]
	en, err := core.NewEngine(latest)
	if err != nil {
		return err
	}
	en.BeginReplay()

	var objs []item.Object
	var rels []item.Relationship
	if format == snapshotFormatV1 {
		objs, rels, err = decodeItemsV1(d, latest)
	} else {
		objs, rels, err = decodeItemsV2(d, latest)
	}
	if err != nil {
		return err
	}
	en.Restore(objs, rels)
	en.ForceNextID(item.ID(nextID))

	dirtyCount, err := d.Int()
	if err != nil {
		return err
	}
	dirty := make([]item.ID, dirtyCount)
	for i := range dirty {
		id, err := d.Uint64()
		if err != nil {
			return err
		}
		dirty[i] = item.ID(id)
	}
	en.RestoreDirty(dirty)

	vers, err := version.Decode(d, func(ver int) (*Schema, error) {
		return db.schemaAt(ver)
	})
	if err != nil {
		return err
	}
	db.engine = en
	db.vers = vers
	return nil
}

// decodeItemsV1 reads the format-1 item sections: inline strings per item.
func decodeItemsV1(d *storage.Decoder, latest *schema.Schema) ([]item.Object, []item.Relationship, error) {
	objCount, err := d.Int()
	if err != nil {
		return nil, nil, err
	}
	objs := make([]item.Object, objCount)
	for i := range objs {
		if objs[i], err = item.DecodeObject(d, latest); err != nil {
			return nil, nil, err
		}
	}
	relCount, err := d.Int()
	if err != nil {
		return nil, nil, err
	}
	rels := make([]item.Relationship, relCount)
	for i := range rels {
		if rels[i], err = item.DecodeRelationship(d, latest); err != nil {
			return nil, nil, err
		}
	}
	return objs, rels, nil
}

// decodeItemsV2 reads the format-2 item sections: the symbol table, then the
// sym-coded items blob.
func decodeItemsV2(d *storage.Decoder, latest *schema.Schema) ([]item.Object, []item.Relationship, error) {
	strs, err := item.DecodeSymTab(d)
	if err != nil {
		return nil, nil, err
	}
	body, err := d.Blob()
	if err != nil {
		return nil, nil, err
	}
	bd := storage.NewDecoder(body)
	objCount, err := bd.Int()
	if err != nil {
		return nil, nil, err
	}
	objs := make([]item.Object, objCount)
	for i := range objs {
		if objs[i], err = item.DecodeObjectSym(bd, strs, latest); err != nil {
			return nil, nil, err
		}
	}
	relCount, err := bd.Int()
	if err != nil {
		return nil, nil, err
	}
	rels := make([]item.Relationship, relCount)
	for i := range rels {
		if rels[i], err = item.DecodeRelationshipSym(bd, strs, latest); err != nil {
			return nil, nil, err
		}
	}
	return objs, rels, nil
}
