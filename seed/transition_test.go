package seed

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestTransitionRules exercises the history-sensitive consistency rules:
// the paper's open problem of constraints on the transition from a version
// to its successor.
func TestTransitionRules(t *testing.T) {
	db := memDB(t, Figure3Schema())

	// Rule: 'Revised' dates must never move backwards between versions.
	db.RegisterTransitionRule("revisedMonotonic", func(tr Transition) error {
		for _, id := range tr.Changed {
			next, ok := tr.Next.Object(id)
			if !ok || next.Class.Name() != "Revised" {
				continue
			}
			prev, ok := tr.Prev.Object(id)
			if !ok || !prev.Value.IsDefined() || !next.Value.IsDefined() {
				continue
			}
			if next.Value.Date().Before(prev.Value.Date()) {
				return fmt.Errorf("Revised of item %d moved backwards (%s -> %s)",
					id, prev.Value, next.Value)
			}
		}
		return nil
	})

	h, _ := db.CreateObject("Action", "H")
	rev, _ := db.CreateValueObject(h, "Revised",
		NewDate(time.Date(1986, 2, 1, 0, 0, 0, 0, time.UTC)))
	v1, err := db.SaveVersion("first")
	if err != nil {
		t.Fatal(err)
	}

	// Moving the date forward is fine.
	if err := db.SetValue(rev, NewDate(time.Date(1986, 3, 1, 0, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("forward"); err != nil {
		t.Fatal(err)
	}

	// Moving it backwards is vetoed at version creation.
	if err := db.SetValue(rev, NewDate(time.Date(1985, 1, 1, 0, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("backward"); err == nil {
		t.Fatal("backwards transition accepted")
	}
	// The veto leaves the state unsaved but intact; fixing the value lets
	// the save proceed.
	if db.Stats().Core.DirtySinceFreeze == 0 {
		t.Error("dirty state cleared despite veto")
	}
	if err := db.SetValue(rev, NewDate(time.Date(1986, 4, 1, 0, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("fixed"); err != nil {
		t.Fatal(err)
	}
	_ = v1
}

func TestTransitionRuleDeletionGuard(t *testing.T) {
	db := memDB(t, Figure3Schema())
	// Rule: released objects (anything present in the previous version)
	// may not be deleted.
	db.RegisterTransitionRule("noDeleteReleased", func(tr Transition) error {
		for _, id := range tr.Changed {
			if _, stillThere := tr.Next.Object(id); stillThere {
				continue
			}
			if _, existed := tr.Prev.Object(id); existed {
				return errors.New("released object deleted")
			}
		}
		return nil
	})
	a, _ := db.CreateObject("Action", "Released")
	if _, err := db.SaveVersion("release"); err != nil {
		t.Fatal(err)
	}
	// A scratch object created and deleted within one transition is fine.
	b, _ := db.CreateObject("Action", "Scratch")
	_ = db.Delete(b)
	if _, err := db.SaveVersion("scratch churn"); err != nil {
		t.Fatalf("scratch deletion vetoed: %v", err)
	}
	// Deleting the released object is vetoed.
	if err := db.Delete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("illegal delete"); err == nil {
		t.Fatal("deletion of released object accepted")
	}
	// Removing the rule lifts the veto.
	db.RegisterTransitionRule("noDeleteReleased", nil)
	if _, err := db.SaveVersion("now allowed"); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionRuleFirstVersion(t *testing.T) {
	db := memDB(t, Figure3Schema())
	var sawEmptyPrev bool
	db.RegisterTransitionRule("probe", func(tr Transition) error {
		sawEmptyPrev = len(tr.Prev.Objects()) == 0 && len(tr.PrevNum) == 0
		if tr.NextNum.String() != "1.0" {
			return fmt.Errorf("unexpected next number %s", tr.NextNum)
		}
		return nil
	})
	create(t, db, "Action", "A")
	if _, err := db.SaveVersion("first"); err != nil {
		t.Fatal(err)
	}
	if !sawEmptyPrev {
		t.Error("first transition should see an empty predecessor view")
	}
}
