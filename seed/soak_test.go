package seed

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestSoakPersistence drives a file-backed database through a long random
// session — data ops, versions, alternatives, patterns, vacuum — then
// reopens it (replay) and compacts and reopens again (snapshot), comparing
// a complete user-visible fingerprint after each recovery.
func TestSoakPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	rng := rand.New(rand.NewSource(99))

	var names []string
	classes := []string{"Thing", "Data", "InputData", "OutputData", "Action"}
	for i := 0; i < 1200; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			name := fmt.Sprintf("N%d", i)
			if _, err := db.CreateObject(classes[rng.Intn(len(classes))], name); err == nil {
				names = append(names, name)
			}
		case 3:
			if len(names) > 0 {
				if id, ok := db.View().ObjectByName(names[rng.Intn(len(names))]); ok {
					if sid, err := db.CreateSubObject(id, "Description"); err == nil {
						_ = db.SetValue(sid, NewString(fmt.Sprintf("d%d", i)))
					}
				}
			}
		case 4, 5:
			if len(names) >= 2 {
				v := db.View()
				a, okA := v.ObjectByName(names[rng.Intn(len(names))])
				b, okB := v.ObjectByName(names[rng.Intn(len(names))])
				if okA && okB {
					_, _ = db.CreateRelationship("Access", map[string]ID{"from": a, "by": b})
				}
			}
		case 6:
			if len(names) > 0 {
				if id, ok := db.View().ObjectByName(names[rng.Intn(len(names))]); ok {
					_ = db.Reclassify(id, classes[rng.Intn(len(classes))])
				}
			}
		case 7:
			if len(names) > 0 && rng.Intn(3) == 0 {
				idx := rng.Intn(len(names))
				if id, ok := db.View().ObjectByName(names[idx]); ok {
					if db.Delete(id) == nil {
						names = append(names[:idx], names[idx+1:]...)
					}
				}
			}
		case 8:
			if rng.Intn(4) == 0 {
				_, _ = db.SaveVersion(fmt.Sprintf("auto %d", i))
			}
		case 9:
			if rng.Intn(6) == 0 {
				infos := db.Versions()
				if len(infos) > 1 && db.Stats().Core.DirtySinceFreeze == 0 {
					_ = db.SelectVersion(infos[rng.Intn(len(infos))].Num)
					// Rebuild the live name list after time travel.
					names = liveNames(db)
				}
			}
		case 10:
			if rng.Intn(8) == 0 {
				_, _ = db.Vacuum()
			}
		case 11:
			if rng.Intn(8) == 0 {
				pname := fmt.Sprintf("P%d", i)
				if _, err := db.CreatePatternObject("Action", pname); err == nil {
					if len(names) > 0 {
						if inh, ok := db.View().ObjectByName(names[rng.Intn(len(names))]); ok {
							if pid, err := db.ResolvePathRaw(pname); err == nil {
								_, _ = db.Inherit(pid, inh)
							}
						}
					}
				}
			}
		}
	}

	want := fingerprintDB(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery via log replay.
	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	if got := fingerprintDB(db2); got != want {
		t.Fatalf("state after replay differs:\n got %s\nwant %s", head(got), head(want))
	}
	// Recovery via snapshot.
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db3.Close()
	if got := fingerprintDB(db3); got != want {
		t.Fatalf("state after compaction differs:\n got %s\nwant %s", head(got), head(want))
	}
	// The recovered database keeps working.
	if _, err := db3.CreateObject("Action", "PostRecovery"); err != nil {
		t.Fatal(err)
	}
	if _, err := db3.SaveVersion("final"); err != nil {
		t.Fatal(err)
	}
}

func liveNames(db *Database) []string {
	var out []string
	v := db.View()
	for _, id := range v.Objects() {
		if o, ok := v.Object(id); ok && o.Independent() {
			out = append(out, o.Name)
		}
	}
	return out
}

// fingerprintDB renders the complete user-visible state: objects with
// classes and values, relationships with ends, the version tree, and the
// raw (pattern-including) statistics.
func fingerprintDB(db *Database) string {
	var b strings.Builder
	v := db.View()
	for _, id := range v.Objects() {
		o, _ := v.Object(id)
		fmt.Fprintf(&b, "o%d:%s:%s:%s:%s;", id, o.Name, o.Class.QualifiedName(), o.Role, o.Value)
	}
	for _, id := range v.Relationships() {
		r, _ := v.Relationship(id)
		name := "inherits"
		if r.Assoc != nil {
			name = r.Assoc.Name()
		}
		fmt.Fprintf(&b, "r%d:%s", id, name)
		for _, e := range r.Ends {
			fmt.Fprintf(&b, ":%s=%d", e.Role, e.Object)
		}
		b.WriteByte(';')
	}
	var vs []string
	for _, info := range db.Versions() {
		vs = append(vs, fmt.Sprintf("%s/%s/%d/%d", info.Num, info.Note, info.DeltaSize, info.SchemaVersion))
	}
	sort.Strings(vs)
	b.WriteString(strings.Join(vs, ";"))
	st := db.Stats()
	fmt.Fprintf(&b, "|stats:%d/%d/%d/%d/%d/%d",
		st.Core.Objects, st.Core.Relationships, st.Core.DeletedObjects,
		st.Core.DeletedRels, st.Core.Patterns, st.Core.DirtySinceFreeze)
	if base, ok := db.BaseVersion(); ok {
		fmt.Fprintf(&b, "|base:%s", base.Num)
	}
	return b.String()
}

func head(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
