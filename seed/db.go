package seed

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/storage"
	"repro/internal/version"
)

// Database errors.
var (
	ErrNoSchema        = errors.New("seed: opening a fresh database requires a schema")
	ErrClosed          = errors.New("seed: database is closed")
	ErrUnsavedChanges  = errors.New("seed: current state has unsaved changes; save a version first")
	ErrInheritedData   = pattern.ErrInheritedData
	ErrBadSchemaChange = errors.New("seed: schema evolution invalidates existing data")
	// ErrTxOpen rejects whole-database operations (version save/select,
	// schema evolution, compaction) while a transaction is open: they
	// would freeze or persist a half-applied batch. The server takes a
	// whole-database barrier around these operations so clients never see
	// this error.
	ErrTxOpen = errors.New("seed: operation not allowed while a transaction is open")
	// ErrTxConflict reports that two concurrently staged transactions
	// overlap (or that a commit landed under an open transaction's feet).
	// It is retryable: roll back, re-read, and re-stage. The server's
	// check-out locks keep disjoint check-ins conflict-free; this surfaces
	// only for genuinely overlapping write sets.
	ErrTxConflict = core.ErrTxConflict
	// ErrTxDone rejects operations on a transaction handle that was
	// already committed or rolled back.
	ErrTxDone = errors.New("seed: transaction already committed or rolled back")
)

// SnapshotMode selects how versions store item states.
type SnapshotMode uint8

const (
	// DeltaSnapshots stores only the items changed since the previous
	// version (the paper's design).
	DeltaSnapshots SnapshotMode = iota
	// FullSnapshots stores every item in every version — the ablation
	// baseline A1 in DESIGN.md.
	FullSnapshots
)

// SyncPolicy selects when journaled operations become durable; see the
// storage package.
type SyncPolicy = storage.SyncPolicy

// Sync policies for Options.SyncPolicy.
const (
	// SyncOnRequest defers fsync to Sync, SaveVersion, Compact and Close
	// (the default).
	SyncOnRequest = storage.SyncOnRequest
	// SyncGroupCommit makes every journaled operation durable before it
	// returns. Note that Database mutations serialize on the write lock,
	// so fsync coalescing across concurrent committers happens at the
	// storage layer (storage.Store.Commit), not between Database callers.
	SyncGroupCommit = storage.SyncGroupCommit
)

// Options configure a database.
type Options struct {
	// Schema is required when the directory is fresh (or for NewMemory).
	Schema *Schema
	// Mode selects delta (default) or full version snapshots.
	Mode SnapshotMode
	// SyncPolicy selects when journal records become durable.
	SyncPolicy SyncPolicy
	// SyncEveryOp is the legacy spelling of SyncPolicy: SyncGroupCommit.
	// Deprecated: set SyncPolicy instead.
	SyncEveryOp bool
	// SegmentSize caps one write-ahead-log segment file in bytes before the
	// log rotates to the next numbered segment (0 selects the storage
	// default, 4 MiB).
	SegmentSize int64
	// CompactAfter triggers automatic snapshot compaction when the
	// write-ahead log exceeds this many bytes across all segments
	// (0 disables).
	CompactAfter int64
	// Clock supplies timestamps (defaults to time.Now; tests and
	// benchmarks inject fixed clocks for determinism).
	Clock func() time.Time
}

// storage returns the storage-layer options this configuration implies.
func (o Options) storage() storage.Options {
	so := storage.Options{SegmentSize: o.SegmentSize, SyncPolicy: o.SyncPolicy}
	if o.SyncEveryOp {
		so.SyncPolicy = storage.SyncGroupCommit
	}
	return so
}

// Database is a SEED database: the current state, the version tree, and —
// when file-backed — a write-ahead log plus snapshot in one directory.
// Methods are safe for use from multiple goroutines: mutations serialize on
// a write lock, retrieval runs in parallel on a read lock, and View/RawView
// return immutable snapshots that stay consistent while mutations proceed.
// Several transactions may be staged concurrently via BeginTx — each Tx
// carries its own batch, and transactions with disjoint write sets commit
// independently (overlaps surface as ErrTxConflict); the server maps
// check-out lock sets onto transactions, which is what retires its global
// write gate (DESIGN.md section 8).
type Database struct {
	// mu guards the mutable database state below. The seed:guarded-by
	// annotations are enforced at compile time by the guardedby analyzer
	// (internal/lint, `seedlint ./...`): reads require at least RLock,
	// writes require Lock, both on this Database's own mu. Helpers that
	// run with the lock already held carry a seed:locked-caller marker.
	mu sync.RWMutex

	schemas []*schema.Schema // seed:guarded-by(mu) — index = version-1
	engine  *core.Engine     // seed:guarded-by(mu)
	vers    *version.Manager // seed:guarded-by(mu)
	store   *storage.Store   // immutable after Open; internally synchronized
	opts    Options          // immutable after Open
	clock   func() time.Time // immutable after Open

	snapMu sync.Mutex                    // serializes snapshot builds
	snap   atomic.Pointer[snapshotCache] // snapshot of the last built generation
	gen    uint64                        // seed:guarded-by(mu) — mutation generation (bumped per visible change)

	legacy *Tx // seed:guarded-by(mu) — transaction opened by the legacy Begin (global operations join it)

	// Follower replication (replica.go). replica marks a read-only
	// follower — every mutation entry point refuses with ErrNotPrimary.
	// rep is the follower's recovery dispatch: it persists transaction
	// batch framing across ApplyLogRecords calls, so a batch split over
	// stream chunks still applies atomically.
	replica bool      // immutable after construction
	rep     *recovery // seed:guarded-by(mu) — follower apply state

	transitions map[string]TransitionRule // seed:guarded-by(mu) — history-sensitive consistency rules

	closed bool // seed:guarded-by(mu)
}

// NewMemory creates an ephemeral database over a frozen schema.
func NewMemory(sch *Schema) (*Database, error) {
	return newDatabase(nil, Options{Schema: sch})
}

// Open opens (or creates) a file-backed database in dir. A fresh directory
// requires Options.Schema; an existing database loads its schema versions
// from storage and ignores Options.Schema.
func Open(dir string, opts Options) (*Database, error) {
	db := &Database{opts: opts, clock: opts.Clock}
	if db.clock == nil {
		db.clock = time.Now
	}
	db.vers = version.NewManager()
	rec := &recovery{db: db}
	st, err := storage.Open(dir, rec, opts.storage())
	if err != nil {
		return nil, err
	}
	db.store = st
	if db.engine == nil {
		// Fresh database: no snapshot, no schema record replayed.
		if opts.Schema == nil {
			st.Close()
			return nil, ErrNoSchema
		}
		if err := db.initFresh(opts.Schema); err != nil {
			st.Close()
			return nil, err
		}
	}
	if rec.inBatch {
		// The log ends in a torn transaction batch (crash mid-append). Its
		// buffered records were dropped; neutralize the fragment durably so
		// records appended from now on are never mistaken for its
		// continuation.
		if err := st.Append(encTxBoundary(recTxAbort)); err != nil {
			st.Close()
			return nil, err
		}
		if err := st.Sync(); err != nil {
			st.Close()
			return nil, err
		}
	}
	db.engine.EndReplay()
	db.engine.SetJournal(db.appendRecord)
	return db, nil
}

func newDatabase(store *storage.Store, opts Options) (*Database, error) {
	if opts.Schema == nil {
		return nil, ErrNoSchema
	}
	db := &Database{opts: opts, store: store, clock: opts.Clock}
	if db.clock == nil {
		db.clock = time.Now
	}
	db.vers = version.NewManager()
	if err := db.initFresh(opts.Schema); err != nil {
		return nil, err
	}
	db.engine.EndReplay()
	if store != nil {
		db.engine.SetJournal(db.appendRecord)
	}
	return db, nil
}

// initFresh installs the initial schema and engine, journaling the schema
// when file-backed.
//
// seed:locked-caller — runs from newDatabase before the *Database value is
// published, so no other goroutine can observe the fields it initializes.
func (db *Database) initFresh(sch *Schema) error {
	if !sch.Frozen() {
		return schema.ErrNotFrozen
	}
	if sch.Version() != 1 {
		return fmt.Errorf("seed: initial schema must have version 1, got %d", sch.Version())
	}
	en, err := core.NewEngine(sch)
	if err != nil {
		return err
	}
	db.schemas = []*schema.Schema{sch}
	db.engine = en
	if db.store != nil {
		if err := db.store.Append(encSchemaRecord(sdl.Render(sch))); err != nil {
			return err
		}
		if err := db.store.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the database.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.store != nil {
		return db.store.Close()
	}
	return nil
}

// Sync makes all journaled operations durable. The storage layer has its
// own locking, so Sync only needs the read lock and runs in parallel with
// retrieval.
func (db *Database) Sync() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return nil
	}
	return db.store.Sync()
}

// SealLog seals the write-ahead log's tail segment durably (staged
// group-commit batches drain first) and starts a fresh empty tail. A
// graceful server drain calls this after the last check-in commits, so the
// log a clean shutdown leaves behind consists only of sealed, immutable
// segments. In-memory databases have no log; the call is a no-op.
func (db *Database) SealLog() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return nil
	}
	return db.store.Seal()
}

// Schema returns the current schema version.
func (db *Database) Schema() *Schema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.Schema()
}

// SchemaVersion returns the current schema version number.
func (db *Database) SchemaVersion() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.Schema().Version()
}

// SchemaAt returns a historical schema version (1-based).
func (db *Database) SchemaAt(ver int) (*Schema, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schemaAt(ver)
}

// schemaAt resolves a 1-based schema version.
//
// seed:locked-caller
func (db *Database) schemaAt(ver int) (*schema.Schema, error) {
	if ver < 1 || ver > len(db.schemas) {
		return nil, fmt.Errorf("seed: unknown schema version %d (have 1..%d)", ver, len(db.schemas))
	}
	return db.schemas[ver-1], nil
}

// SetSnapshotMode switches between delta snapshots (the paper's design)
// and full-copy snapshots (the A1 ablation baseline) for subsequent
// SaveVersion calls.
func (db *Database) SetSnapshotMode(m SnapshotMode) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.opts.Mode = m
}

// SetSnapshotCOW switches the incremental copy-on-write read snapshots on
// or off (on by default). With COW off, the first View/RawView after every
// mutation rebuilds the whole snapshot from scratch — the pre-COW baseline
// the E8 experiment measures (A3 in DESIGN.md section 7). Results are
// identical either way; only the freeze cost changes.
func (db *Database) SetSnapshotCOW(enabled bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.engine.SetSnapshotCOW(enabled)
}

// SetColumnarStore switches the engine between the columnar representation
// (the default) and the map-backed representation that survives as the
// ablation baseline (A4 in DESIGN.md section 11; the E12 experiment measures
// the two against each other). Switching migrates every item state into a
// fresh store of the other representation and rebuilds read snapshots from
// scratch on the next View; results are identical either way. Refused while
// a transaction is open.
func (db *Database) SetColumnarStore(enabled bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.engine.SetColumnarStore(enabled)
}

// ColumnarStore reports whether the engine is on the columnar representation.
func (db *Database) ColumnarStore() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.ColumnarStore()
}

// RegisterProcedure registers an attached procedure implementation under
// the name schema elements reference.
func (db *Database) RegisterProcedure(name string, p Procedure) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.engine.RegisterProcedure(name, p)
}

// EvolveSchema derives the next schema version: edit receives a mutable
// clone of the current schema; after a successful edit the schema is
// frozen, every existing item is re-bound and re-validated under it, and
// the new version becomes current. Versions saved earlier keep their old
// schema version for interpretation.
func (db *Database) EvolveSchema(edit func(*Schema) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.replica {
		return ErrNotPrimary
	}
	if db.engine.InTx() {
		return ErrTxOpen
	}
	next, err := db.engine.Schema().Evolve()
	if err != nil {
		return err
	}
	if err := edit(next); err != nil {
		return err
	}
	if err := next.Freeze(); err != nil {
		return err
	}
	old := db.engine.Schema()
	if err := db.engine.SetSchema(next); err != nil {
		return err
	}
	restore := func() {
		_ = db.engine.SetSchema(old)
		_ = db.engine.RebindSchema()
	}
	if err := db.engine.RebindSchema(); err != nil {
		restore()
		return fmt.Errorf("%w: %v", ErrBadSchemaChange, err)
	}
	if err := db.validateAllLocked(); err != nil {
		restore()
		return fmt.Errorf("%w: %v", ErrBadSchemaChange, err)
	}
	db.schemas = append(db.schemas, next)
	db.gen++
	if db.store != nil {
		if err := db.store.Append(encSchemaRecord(sdl.Render(next))); err != nil {
			return err
		}
		return db.store.Sync()
	}
	return nil
}

// ValidateAll re-checks every consistency rule for every live item — the
// deferred whole-database validation the ablation study A2 compares against
// SEED's eager per-update checking. It only reads, so it runs in parallel
// with retrieval.
func (db *Database) ValidateAll() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.validateAllLocked()
}

// validateAllLocked checks every object and relationship against the
// schema.
//
// seed:locked-caller
func (db *Database) validateAllLocked() error {
	v := db.engine.View()
	for _, id := range v.Objects() {
		if err := consistency.CheckObject(v, id); err != nil {
			return err
		}
	}
	for _, id := range v.Relationships() {
		if err := consistency.CheckRelationship(v, id); err != nil {
			return err
		}
	}
	sp := pattern.NewSpliced(v)
	for _, rid := range v.Relationships() {
		r, ok := v.Relationship(rid)
		if !ok || !r.Inherits {
			continue
		}
		if err := sp.ValidateInheritor(r.End("inheritor")); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes the database state.
type Stats struct {
	Core        core.Stats
	Versions    int
	SchemaV     int
	Generation  uint64 // mutation generation (bumped per visible change)
	LogBytes    int64
	LogSegments int
}

// Stats reports current state statistics.
func (db *Database) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Generation: db.gen}
	if db.engine != nil { // nil on a follower before its first bootstrap
		s.Core = db.engine.Stats()
		s.SchemaV = db.engine.Schema().Version()
	}
	s.Versions = db.vers.Count()
	if db.store != nil {
		s.LogBytes = db.store.LogSize()
		s.LogSegments = db.store.Segments()
	}
	return s
}

// appendRecord is the engine's journal sink for auto-committed operations.
// Durability is the storage layer's business: under SyncGroupCommit the
// Append blocks until its batch is fsynced, under SyncOnRequest it only
// buffers.
func (db *Database) appendRecord(payload []byte) error {
	if db.store == nil {
		return nil
	}
	return db.store.Append(payload)
}

// journalBatchLocked appends a committed transaction's records to the log
// as one atomic, contiguous batch (framed with recTxBegin/recTxEnd when it
// holds more than one record — a single record is atomic by construction).
// The records' position in the log is fixed while db.mu is held, matching
// commit order; the returned wait function (nil under SyncOnRequest)
// reports durability and is called after releasing the lock, so concurrent
// committers coalesce into shared fsyncs instead of serializing on db.mu.
func (db *Database) journalBatchLocked(records [][]byte) (func() error, error) {
	if db.store == nil || len(records) == 0 {
		return nil, nil
	}
	payloads := records
	if len(records) > 1 {
		payloads = make([][]byte, 0, len(records)+2)
		payloads = append(payloads, encTxBoundary(recTxBegin))
		payloads = append(payloads, records...)
		payloads = append(payloads, encTxBoundary(recTxEnd))
	}
	return db.store.AppendBatch(payloads)
}

// maybeCompact runs auto-compaction when the log grows past the threshold.
// Never inside an open transaction: the snapshot would capture uncommitted
// operations and truncate the log before their buffered journal records
// exist — Commit re-triggers the check once the batch is journaled.
//
// seed:locked-caller
func (db *Database) maybeCompact() error {
	if db.engine.InTx() {
		return nil
	}
	if db.store == nil || db.opts.CompactAfter <= 0 || db.store.LogSize() < db.opts.CompactAfter {
		return nil
	}
	return db.compactLocked()
}

// Compact writes a full snapshot and truncates the write-ahead log. It is
// rejected while a transaction is open — the snapshot would persist the
// half-applied batch.
func (db *Database) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.replica {
		return ErrNotPrimary // a follower has no log of its own to compact
	}
	if db.engine.InTx() {
		return ErrTxOpen
	}
	if db.store == nil {
		return nil
	}
	return db.compactLocked()
}
