// Package seed is the public API of SEED, a database system for software
// engineering environments based on the entity-relationship approach
// (Glinz & Ludewig, ICDE 1986).
//
// SEED extends the entity-relationship model with the features a
// specification and design environment needs:
//
//   - hierarchically structured objects whose dependent sub-objects are
//     named by their role within the parent ('Alarms.Text[0].Selector');
//   - vague information via generalization hierarchies over both classes
//     and associations, with re-classification to make data more precise;
//   - incomplete information via a split integrity concept: consistency
//     rules (membership, maximum cardinalities, ACYCLIC, attached
//     procedures) are enforced on every update, completeness rules
//     (minimum cardinalities, covering conditions) are checked on demand;
//   - versions identified by a decimal classification with delta storage,
//     alternatives, and schema versions;
//   - patterns with inheritance, and variants built from patterns.
//
// A Database is obtained with Open (file-backed, with write-ahead logging
// and snapshot compaction) or NewMemory (ephemeral). Schemas are built with
// the schema builder (re-exported here) or parsed from SDL text.
package seed

import (
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/item"
	"repro/internal/schema"
	"repro/internal/sdl"
	"repro/internal/value"
)

// Core vocabulary, re-exported so that applications only import this
// package.
type (
	// ID identifies a data item (object or relationship).
	ID = item.ID
	// Object is the state of one object.
	Object = item.Object
	// Relationship is the state of one relationship.
	Relationship = item.Relationship
	// End is one filled role of a relationship.
	End = item.End
	// View is a read-only observation of one database state.
	View = item.View
	// Value is a typed value (STRING, INTEGER, REAL, BOOLEAN, DATE).
	Value = value.Value
	// Kind enumerates value sorts.
	Kind = value.Kind
	// Schema is a SEED schema.
	Schema = schema.Schema
	// Class is an object class.
	Class = schema.Class
	// Association is a relationship class.
	Association = schema.Association
	// Cardinality is a min..max occurrence constraint.
	Cardinality = schema.Cardinality
	// VersionNumber is a decimal-classification version identifier.
	VersionNumber = ident.VersionNumber
	// Path is a qualified hierarchical object name.
	Path = ident.Path
	// Finding is one detected incompleteness.
	Finding = consistency.Finding
	// Rule identifies a completeness rule.
	Rule = consistency.Rule
	// Event describes a mutation to an attached procedure.
	Event = core.Event
	// Procedure is an attached procedure implementation.
	Procedure = core.Procedure
	// Op classifies a mutation for attached procedures.
	Op = core.Op
)

// NoID is the zero, invalid item ID.
const NoID = item.NoID

// Value constructors and kinds.
var (
	NewString  = value.NewString
	NewInteger = value.NewInteger
	NewReal    = value.NewReal
	NewBoolean = value.NewBoolean
	NewDate    = value.NewDate
	ParseValue = value.Parse
	Undefined  = value.Undefined
)

// Value kinds.
const (
	KindNone    = value.KindNone
	KindString  = value.KindString
	KindInteger = value.KindInteger
	KindReal    = value.KindReal
	KindBoolean = value.KindBoolean
	KindDate    = value.KindDate
)

// Mutation ops observed by attached procedures.
const (
	OpCreate     = core.OpCreate
	OpUpdate     = core.OpUpdate
	OpDelete     = core.OpDelete
	OpReclassify = core.OpReclassify
)

// Completeness rules.
const (
	RuleMinChildren      = consistency.RuleMinChildren
	RuleMinParticipation = consistency.RuleMinParticipation
	RuleCovering         = consistency.RuleCovering
	RuleUndefinedValue   = consistency.RuleUndefinedValue
)

// Schema construction.
var (
	// NewSchema creates an empty, mutable schema.
	NewSchema = schema.New
	// ParseSDL parses SDL text into a frozen schema.
	ParseSDL = sdl.Parse
	// RenderSDL renders a schema as canonical SDL text.
	RenderSDL = sdl.Render
	// Card builds a cardinality; use Unbounded for "*".
	Card = schema.Card
	// ParsePath parses a qualified name such as "Alarms.Text[0].Selector".
	ParsePath = ident.ParsePath
	// ParseVersion parses a version number such as "2.0".
	ParseVersion = ident.ParseVersion
)

// Cardinality shorthands.
var (
	Any        = schema.Any
	AtLeastOne = schema.AtLeastOne
	AtMostOne  = schema.AtMostOne
	ExactlyOne = schema.ExactlyOne
)

// Unbounded is the Max of an unlimited cardinality ("*").
const Unbounded = schema.Unbounded

// Figure2Schema and Figure3Schema build the paper's example schemas.
var (
	Figure2Schema = schema.Figure2
	Figure3Schema = schema.Figure3
)
