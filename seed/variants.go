package seed

import "repro/internal/pattern"

// Variants (paper, section "Patterns and Variants"): a variants family is a
// set of objects and relationships that have part of their information in
// common but differ in other parts. The common part connects to pattern
// objects via pattern relationships; every variant inherits those patterns,
// which guarantees that all variant parts have the same relationships to
// the common part — something ordinary relationships could not assure.

// VariantFamily manages a set of variants over shared patterns.
type VariantFamily struct {
	db       *Database
	patterns []ID
	variants []ID
}

// NewVariantFamily starts a family over the given pattern objects (create
// them with CreatePatternObject and connect them to the common part with
// ordinary CreateRelationship calls, which become pattern relationships
// automatically).
func (db *Database) NewVariantFamily(patterns ...ID) *VariantFamily {
	return &VariantFamily{db: db, patterns: append([]ID(nil), patterns...)}
}

// AddVariant creates a new variant object of the given class and lets it
// inherit every family pattern.
func (f *VariantFamily) AddVariant(className, name string) (ID, error) {
	id, err := f.db.CreateObject(className, name)
	if err != nil {
		return NoID, err
	}
	for _, pat := range f.patterns {
		if _, err := f.db.Inherit(pat, id); err != nil {
			// Creation is not atomic across patterns; undo what we did.
			_ = f.db.Delete(id)
			return NoID, err
		}
	}
	f.variants = append(f.variants, id)
	return id, nil
}

// AdoptVariant lets an existing object join the family.
func (f *VariantFamily) AdoptVariant(id ID) error {
	for _, pat := range f.patterns {
		if _, err := f.db.Inherit(pat, id); err != nil {
			return err
		}
	}
	f.variants = append(f.variants, id)
	return nil
}

// Patterns returns the family's shared pattern objects.
func (f *VariantFamily) Patterns() []ID { return append([]ID(nil), f.patterns...) }

// Variants returns the members added through this family value.
func (f *VariantFamily) Variants() []ID { return append([]ID(nil), f.variants...) }

// InheritorsOf lists the items inheriting a pattern in the current state.
func (db *Database) InheritorsOf(patternID ID) []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return pattern.InheritorsOf(db.snapshotLocked().raw, patternID)
}

// PatternsOf lists the patterns an item inherits in the current state.
func (db *Database) PatternsOf(inheritorID ID) []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return pattern.PatternsOf(db.snapshotLocked().raw, inheritorID)
}
