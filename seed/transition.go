package seed

import (
	"fmt"
	"sort"

	"repro/internal/item"
	"repro/internal/pattern"
	"repro/internal/version"
)

// History-sensitive consistency rules — the second open problem the paper
// names ("we have not yet considered history sensitive consistency rules,
// i.e. rules that impose constraints for the transition from a given
// version to its successor"). A TransitionRule inspects the predecessor
// version's view and the state about to be saved; a non-nil error vetoes
// the version creation, leaving the current state unsaved and unchanged.

// Transition describes one version transition to a rule.
type Transition struct {
	// Prev is the view to the version the current work is based on; for
	// the first version it is an empty view.
	Prev View
	// Next is the user view of the state about to be saved.
	Next View
	// Changed lists the items the new version will freeze (ascending).
	Changed []ID
	// PrevNum is the predecessor's number (empty for the first version).
	PrevNum VersionNumber
	// NextNum is the number the new version will receive.
	NextNum VersionNumber
}

// TransitionRule checks one version transition.
type TransitionRule func(t Transition) error

// RegisterTransitionRule installs a named history-sensitive consistency
// rule, evaluated by every subsequent SaveVersion. Re-registering a name
// replaces the rule; a nil rule removes it.
func (db *Database) RegisterTransitionRule(name string, rule TransitionRule) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.transitions == nil {
		db.transitions = make(map[string]TransitionRule)
	}
	if rule == nil {
		delete(db.transitions, name)
		return
	}
	db.transitions[name] = rule
}

// checkTransitions evaluates all registered rules for the upcoming save.
//
// seed:locked-caller — SaveVersion holds db.mu across the check.
func (db *Database) checkTransitions() error {
	if len(db.transitions) == 0 || db.engine.Replaying() {
		return nil
	}
	tr := Transition{
		Next:    pattern.NewSpliced(db.engine.View()),
		Changed: db.engine.DirtyIDs(),
		NextNum: db.vers.NextNumber(),
	}
	if base := db.vers.Base(); base != nil {
		states, err := db.vers.Materialize(base.Num)
		if err != nil {
			return err
		}
		sch, err := db.schemaAt(base.SchemaVer)
		if err != nil {
			return err
		}
		tr.Prev = pattern.NewSpliced(version.NewView(sch, states))
		tr.PrevNum = base.Num
	} else {
		tr.Prev = version.NewView(db.engine.Schema(), map[item.ID]version.Frozen{})
	}
	names := make([]string, 0, len(db.transitions))
	for name := range db.transitions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := db.transitions[name](tr); err != nil {
			return fmt.Errorf("seed: transition rule %q vetoed version %s: %w", name, tr.NextNum, err)
		}
	}
	return nil
}
