package seed

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

// TestVirtualIDGuards: every mutating facade operation rejects virtual
// (inherited) item IDs with ErrInheritedData.
func TestVirtualIDGuards(t *testing.T) {
	db := memDB(t, Figure3Schema())
	po, _ := db.CreatePatternObject("Data", "PO")
	_, _ = db.CreateValueObject(po, "Description", NewString("x"))
	real := create(t, db, "Data", "Real")
	if _, err := db.Inherit(po, real); err != nil {
		t.Fatal(err)
	}
	virtual := db.View().Children(real, "Description")[0]
	if !pattern.IsVirtualID(virtual) {
		t.Fatal("expected a virtual child")
	}
	ops := map[string]error{
		"SetValue":     db.SetValue(virtual, NewString("y")),
		"Delete":       db.Delete(virtual),
		"Reclassify":   db.Reclassify(virtual, "Data"),
		"MarkPattern":  db.MarkPattern(virtual),
		"ClearPattern": db.ClearPattern(virtual),
		"CreateSub":    err2(db.CreateSubObject(virtual, "Text")),
		"CreateValue":  err2(db.CreateValueObject(virtual, "Text", Undefined)),
		"Inherit":      err2(db.Inherit(virtual, real)),
		"Relationship": err2(db.CreateRelationship("Access", map[string]ID{"from": virtual, "by": real})),
		"Disinherit":   db.Disinherit(virtual, real),
	}
	for name, err := range ops {
		if !errors.Is(err, ErrInheritedData) {
			t.Errorf("%s on virtual id: %v", name, err)
		}
	}
}

func err2[T any](_ T, err error) error { return err }

func TestSchemaAtBounds(t *testing.T) {
	db := memDB(t, Figure3Schema())
	if _, err := db.SchemaAt(0); err == nil {
		t.Error("SchemaAt(0) accepted")
	}
	if _, err := db.SchemaAt(2); err == nil {
		t.Error("SchemaAt(2) accepted on fresh db")
	}
	if s, err := db.SchemaAt(1); err != nil || s.Version() != 1 {
		t.Errorf("SchemaAt(1) = %v, %v", s, err)
	}
}

func TestOpenRejectsNonInitialSchema(t *testing.T) {
	evolved, err := Figure3Schema().Evolve()
	if err != nil {
		t.Fatal(err)
	}
	if err := evolved.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMemory(evolved); err == nil {
		t.Error("schema with version 2 accepted as initial")
	}
	unfrozen := NewSchema("X")
	if _, err := NewMemory(unfrozen); err == nil {
		t.Error("unfrozen schema accepted")
	}
}

func TestSyncEveryOp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure2Schema(), SyncEveryOp: true, Clock: fixedClock()})
	create(t, db, "Data", "A")
	create(t, db, "Data", "B")
	db.Close()
	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	if got := db2.Stats().Core.Objects; got != 2 {
		t.Errorf("objects after SyncEveryOp reopen = %d", got)
	}
}

func TestGetObjectAndOriginMisses(t *testing.T) {
	db := memDB(t, Figure3Schema())
	if _, ok := db.GetObject("Nope"); ok {
		t.Error("GetObject on missing name")
	}
	if _, _, _, ok := db.Origin(12345); ok {
		t.Error("Origin on real id")
	}
	if _, err := db.ResolvePath("No.Such.Path"); err == nil {
		t.Error("ResolvePath on missing path")
	}
	if _, err := db.ResolvePath("9bad"); err == nil {
		t.Error("ResolvePath on malformed path")
	}
}

func TestHistoryOfUnknownItem(t *testing.T) {
	db := memDB(t, Figure3Schema())
	create(t, db, "Action", "A")
	_, _ = db.SaveVersion("v")
	if got := db.HistoryOf(99999, nil); len(got) != 0 {
		t.Errorf("history of unknown item = %v", got)
	}
}

func TestVersionViewUnknown(t *testing.T) {
	db := memDB(t, Figure3Schema())
	if _, err := db.VersionView(VersionNumber{9, 9}); err == nil {
		t.Error("VersionView of unknown version accepted")
	}
	if err := db.SelectVersion(VersionNumber{9, 9}); err == nil {
		t.Error("SelectVersion of unknown version accepted")
	}
	if err := db.DeleteVersion(VersionNumber{9, 9}); err == nil {
		t.Error("DeleteVersion of unknown version accepted")
	}
}

func TestCompletenessOfVirtualContext(t *testing.T) {
	// Inherited items satisfy completeness of their inheritors: a pattern
	// provides the Revised 1..1 sub-object.
	db := memDB(t, Figure3Schema())
	po, _ := db.CreatePatternObject("Data", "PO")
	_, _ = db.CreateValueObject(po, "Revised", NewDate(fixedClock()()))
	real := create(t, db, "Data", "Real")
	hasRevisedFinding := func() bool {
		for _, f := range db.CompletenessOf(real) {
			if f.Rule == RuleMinChildren {
				return true
			}
		}
		return false
	}
	if !hasRevisedFinding() {
		t.Fatal("missing Revised not flagged before inherit")
	}
	if _, err := db.Inherit(po, real); err != nil {
		t.Fatal(err)
	}
	if hasRevisedFinding() {
		t.Error("inherited Revised does not satisfy completeness")
	}
}
