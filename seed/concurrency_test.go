package seed

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAccess hammers one database from several goroutines; run
// under -race this validates the facade's locking discipline. SEED stays
// logically single-user — operations serialize — but the API must be safe.
func TestConcurrentAccess(t *testing.T) {
	db := memDB(t, Figure3Schema())
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("W%dN%d", w, i)
				id, err := db.CreateObject("Data", name)
				if err != nil {
					errs <- err
					return
				}
				if _, err := db.CreateValueObject(id, "Description", NewString(name)); err != nil {
					errs <- err
					return
				}
				// Interleave reads.
				if _, ok := db.GetObject(name); !ok {
					errs <- fmt.Errorf("own object %s invisible", name)
					return
				}
				_ = db.Stats()
				if i%25 == 0 {
					_ = db.Completeness()
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Stats().Core.Objects; got != workers*perWorker*2 {
		t.Errorf("objects = %d, want %d", got, workers*perWorker*2)
	}
	// Versions interleaved with reads from another goroutine.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			v := db.View()
			_ = v.Objects()
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := db.SaveVersion(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		_, _ = db.CreateObject("Action", fmt.Sprintf("Post%d", i))
	}
	<-done
}
