package seed

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentAccess hammers one database from several goroutines; run
// under -race this validates the facade's locking discipline. SEED stays
// logically single-user — operations serialize — but the API must be safe.
func TestConcurrentAccess(t *testing.T) {
	db := memDB(t, Figure3Schema())
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("W%dN%d", w, i)
				id, err := db.CreateObject("Data", name)
				if err != nil {
					errs <- err
					return
				}
				if _, err := db.CreateValueObject(id, "Description", NewString(name)); err != nil {
					errs <- err
					return
				}
				// Interleave reads.
				if _, ok := db.GetObject(name); !ok {
					errs <- fmt.Errorf("own object %s invisible", name)
					return
				}
				_ = db.Stats()
				if i%25 == 0 {
					_ = db.Completeness()
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Stats().Core.Objects; got != workers*perWorker*2 {
		t.Errorf("objects = %d, want %d", got, workers*perWorker*2)
	}
	// Versions interleaved with reads from another goroutine.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			v := db.View()
			_ = v.Objects()
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := db.SaveVersion(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		_, _ = db.CreateObject("Action", fmt.Sprintf("Post%d", i))
	}
	<-done
}

// TestSnapshotViewStable: View returns an immutable snapshot pinned at call
// time — later mutations are invisible through it, and a fresh View sees
// them.
func TestSnapshotViewStable(t *testing.T) {
	db := memDB(t, Figure3Schema())
	alarms, err := db.CreateObject("Data", "Alarms")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := db.CreateValueObject(alarms, "Description", NewString("old"))
	if err != nil {
		t.Fatal(err)
	}

	v := db.View()

	if err := db.SetValue(desc, NewString("new")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateObject("Action", "Later"); err != nil {
		t.Fatal(err)
	}

	if o, ok := v.Object(desc); !ok || o.Value.Str() != "old" {
		t.Errorf("pinned snapshot shows %q, want \"old\"", o.Value.Str())
	}
	if _, ok := v.ObjectByName("Later"); ok {
		t.Error("pinned snapshot sees an object created after the pin")
	}
	fresh := db.View()
	if o, _ := fresh.Object(desc); o.Value.Str() != "new" {
		t.Errorf("fresh snapshot shows %q, want \"new\"", o.Value.Str())
	}
	if _, ok := fresh.ObjectByName("Later"); !ok {
		t.Error("fresh snapshot misses the new object")
	}
}

// TestTransactionInvisibleUntilCommit: while a transaction is open, View
// keeps serving the last committed state; path resolution for updates sees
// the transaction's own effects (the server's check-in path relies on
// both).
func TestTransactionInvisibleUntilCommit(t *testing.T) {
	db := memDB(t, Figure3Schema())
	alarms, _ := db.CreateObject("Data", "Alarms")
	desc, err := db.CreateValueObject(alarms, "Description", NewString("committed"))
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetValue(desc, NewString("in-flight")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateObject("Data", "Mid"); err != nil {
		t.Fatal(err)
	}

	// Readers see the pre-transaction state.
	if o, _ := db.View().Object(desc); o.Value.Str() != "committed" {
		t.Errorf("mid-transaction snapshot shows %q, want \"committed\"", o.Value.Str())
	}
	if _, ok := db.View().ObjectByName("Mid"); ok {
		t.Error("mid-transaction snapshot sees an uncommitted object")
	}
	// The transaction itself can address what it created.
	if _, err := db.ResolvePath("Mid"); err != nil {
		t.Errorf("in-transaction path resolution: %v", err)
	}

	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if o, _ := db.View().Object(desc); o.Value.Str() != "in-flight" {
		t.Errorf("post-commit snapshot shows %q, want \"in-flight\"", o.Value.Str())
	}
	if _, ok := db.View().ObjectByName("Mid"); !ok {
		t.Error("post-commit snapshot misses the committed object")
	}
}

// TestSnapshotsNeverTorn hammers snapshot reads against a transactional
// writer: the writer updates a group of values to one common tag per
// transaction, and every reader-observed snapshot must show all group
// members equal — a mixed group is a torn (half-applied) read. Run under
// -race this also validates the RWMutex discipline.
func TestSnapshotsNeverTorn(t *testing.T) {
	db := memDB(t, Figure3Schema())
	doc, err := db.CreateObject("Data", "Doc")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := db.CreateSubObject(doc, "Text")
	body, _ := db.CreateSubObject(text, "Body")
	const group = 8
	ids := make([]ID, group)
	for i := range ids {
		if ids[i], err = db.CreateValueObject(body, "Keywords", NewString("tag-0")); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 200
	var stop atomic.Bool
	writerErr := make(chan error, 1)
	go func() {
		defer stop.Store(true)
		for i := 1; i <= rounds; i++ {
			if err := db.Begin(); err != nil {
				writerErr <- err
				return
			}
			tag := fmt.Sprintf("tag-%d", i)
			for _, id := range ids {
				if err := db.SetValue(id, NewString(tag)); err != nil {
					writerErr <- err
					return
				}
			}
			if err := db.Commit(); err != nil {
				writerErr <- err
				return
			}
		}
		writerErr <- nil
	}()

	const readers = 4
	var wg sync.WaitGroup
	readerErrs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v := db.View()
				var first string
				for i, id := range ids {
					o, ok := v.Object(id)
					if !ok {
						readerErrs <- fmt.Errorf("keyword %d invisible", id)
						return
					}
					if i == 0 {
						first = o.Value.Str()
					} else if got := o.Value.Str(); got != first {
						readerErrs <- fmt.Errorf("torn snapshot: keyword[0]=%q keyword[%d]=%q", first, i, got)
						return
					}
				}
			}
			readerErrs <- nil
		}()
	}
	wg.Wait()
	if err := <-writerErr; err != nil {
		t.Fatalf("writer: %v", err)
	}
	close(readerErrs)
	for err := range readerErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if o, _ := db.View().Object(ids[0]); o.Value.Str() != fmt.Sprintf("tag-%d", rounds) {
		t.Errorf("final value = %q, want tag-%d", o.Value.Str(), rounds)
	}
}

// TestWholeDatabaseOpsRejectedMidTransaction: version freezes, version
// selection, schema evolution, and compaction would capture or clobber a
// half-applied batch, so they are refused while a transaction is open.
func TestWholeDatabaseOpsRejectedMidTransaction(t *testing.T) {
	db := memDB(t, Figure3Schema())
	if _, err := db.CreateObject("Data", "Doc"); err != nil {
		t.Fatal(err)
	}
	v1, err := db.SaveVersion("base")
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateObject("Data", "InFlight"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("mid-tx"); !errors.Is(err, ErrTxOpen) {
		t.Errorf("SaveVersion mid-tx: %v, want ErrTxOpen", err)
	}
	if err := db.SelectVersionDiscard(v1); !errors.Is(err, ErrTxOpen) {
		t.Errorf("SelectVersionDiscard mid-tx: %v, want ErrTxOpen", err)
	}
	if err := db.DeleteVersion(v1); !errors.Is(err, ErrTxOpen) {
		t.Errorf("DeleteVersion mid-tx: %v, want ErrTxOpen", err)
	}
	if err := db.EvolveSchema(func(s *Schema) error { return nil }); !errors.Is(err, ErrTxOpen) {
		t.Errorf("EvolveSchema mid-tx: %v, want ErrTxOpen", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrTxOpen) {
		t.Errorf("Compact mid-tx: %v, want ErrTxOpen", err)
	}
	if _, err := db.Vacuum(); !errors.Is(err, ErrTxOpen) {
		t.Errorf("Vacuum mid-tx: %v, want ErrTxOpen", err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	// After the commit everything is allowed again.
	if _, err := db.SaveVersion("after"); err != nil {
		t.Errorf("SaveVersion after commit: %v", err)
	}
}
