package seed

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"time"

	"repro/internal/storage"
	"repro/internal/version"
)

// Follower replication (DESIGN.md section 13). The primary side is
// SubscribeLog: a consistent cut of everything committed (snapshot + sealed
// WAL segments) plus a live tap of every record appended after. The
// follower side is a Database built by NewFollower that applies the stream
// through the same recovery dispatch a crash restart uses — snapshot, then
// records in order, transaction batches surfacing whole or not at all — and
// serves the entire read surface from its own COW generations. Mutations on
// a follower are refused with ErrNotPrimary at every entry point.

// Replication errors.
var (
	// ErrNotPrimary rejects mutations (and primary-only operations)
	// addressed to a read-only follower. Retryable against the primary:
	// nothing about the request was wrong, it reached the wrong process.
	ErrNotPrimary = errors.New("seed: read-only follower, mutate on the primary")
	// ErrNotReplica rejects replication-apply calls on a primary database.
	ErrNotReplica = errors.New("seed: not a follower database")
	// ErrNoLog rejects SubscribeLog on an in-memory database: with no
	// write-ahead log there is nothing to ship.
	ErrNoLog = errors.New("seed: in-memory database has no log to subscribe to")
)

// SubscribeLog opens a replication subscription on a file-backed primary:
// the returned subscription carries the snapshot and sealed segments for
// bootstrap and taps every record committed after the cut. The returned
// generation is the primary's mutation generation at the cut — the
// generation a follower is at once it has applied the whole bootstrap. The
// caller owns the subscription and must Close it.
func (db *Database) SubscribeLog() (*storage.Subscription, uint64, error) {
	// The write lock serializes the cut against every journaled mutation
	// and against Compact, so the (snapshot, segments, tap) triple and the
	// generation stamp describe exactly one point in commit order.
	db.mu.Lock()
	defer db.mu.Unlock()
	switch {
	case db.closed:
		return nil, 0, ErrClosed
	case db.replica:
		// No chaining: a follower's log is not the primary's log.
		return nil, 0, ErrNotPrimary
	case db.store == nil:
		return nil, 0, ErrNoLog
	}
	sub, err := db.store.Subscribe()
	if err != nil {
		return nil, 0, err
	}
	return sub, db.gen, nil
}

// NewFollower creates an empty in-memory follower database. It has no
// engine or schema until the replication stream delivers them
// (ApplyLogSnapshot, ApplyLogRecords, or adopting a bootstrapped staging
// follower via ReplicaAdopt); reads are meaningful only after the first
// complete bootstrap, which the serving layer gates on. Mutations are
// refused with ErrNotPrimary for the follower's whole life. The engine
// stays in replay mode permanently: records were validated by the primary,
// and the follower journals nothing.
func NewFollower() *Database {
	db := &Database{replica: true, clock: time.Now}
	db.vers = version.NewManager()
	db.rep = &recovery{db: db}
	return db
}

// Replica reports whether the database is a read-only follower. The flag
// is immutable after construction.
func (db *Database) Replica() bool { return db.replica }

// Generation returns the mutation generation: bumped once per visible
// change on a primary, once per applied replication step on a follower.
// Generations are process-local coordinates — the serving layer reports a
// follower's position in primary generations separately.
func (db *Database) Generation() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gen
}

// ApplyLogSnapshot resets the follower to a bootstrap snapshot payload. A
// nil payload means the primary had no snapshot on disk: the follower
// resets to empty and the record stream rebuilds everything (its first
// record is the primary's initial schema record). Any half-buffered
// transaction batch from a previous stream is dropped — the stream starts
// over from a consistent base.
func (db *Database) ApplyLogSnapshot(payload []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardReplicaApply(); err != nil {
		return err
	}
	db.rep.inBatch = false
	db.rep.batch = db.rep.batch[:0]
	if payload == nil {
		db.engine = nil
		db.schemas = nil
		db.vers = version.NewManager()
	} else if err := db.loadSnapshot(payload); err != nil {
		return err
	}
	db.gen++
	return nil
}

// ApplyLogRecords applies a run of shipped WAL records in log order through
// the recovery dispatch: engine records mutate state, schema and version
// records evolve their planes, and recTxBegin/recTxEnd framing buffers a
// transaction batch until its end marker arrives — possibly in a later
// call, so a batch split across stream chunks still surfaces atomically.
// Readers pinned to earlier generations are unaffected; the generation bump
// publishes the applied records to new reads.
func (db *Database) ApplyLogRecords(records [][]byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardReplicaApply(); err != nil {
		return err
	}
	for _, rec := range records {
		if err := db.rep.ApplyRecord(rec); err != nil {
			return err
		}
	}
	db.gen++
	return nil
}

// ReplicaAdopt transplants the state of a fully bootstrapped staging
// follower into db in one step. This is how a follower resyncs without
// going dark: the stream (re)bootstrap applies into a fresh staging
// follower while db keeps serving its last consistent state, and the
// caught-up marker swaps the staging state in atomically. staging is
// consumed: it is marked closed and must not be used afterwards.
func (db *Database) ReplicaAdopt(staging *Database) error {
	if staging == db {
		return errors.New("seed: follower cannot adopt itself")
	}
	// staging is private to the caller (nothing else holds a reference), so
	// taking its lock inside ours cannot deadlock.
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.guardReplicaApply(); err != nil {
		return err
	}
	staging.mu.Lock()
	en, schemas, vers := staging.engine, staging.schemas, staging.vers
	ok := staging.replica && !staging.closed && en != nil
	staging.closed = true
	staging.mu.Unlock()
	if !ok {
		return errors.New("seed: adopt source is not a bootstrapped follower")
	}
	// Attribute indexes are engine-local acceleration state: carry the
	// serving follower's registrations across the engine swap so a resync
	// does not silently drop them. A spec whose class vanished from the
	// adopted schema is dropped — the error is the registration's, not the
	// resync's.
	var specs []AttrSpec
	if db.engine != nil {
		specs = db.engine.AttrIndexes()
	}
	db.engine = en
	db.schemas = schemas
	db.vers = vers
	db.rep.inBatch = false
	db.rep.batch = db.rep.batch[:0]
	for _, spec := range specs {
		_ = db.engine.CreateAttrIndex(spec)
	}
	db.gen++
	return nil
}

// guardReplicaApply admits replication-apply calls: follower only, open
// only.
//
// seed:locked-caller
func (db *Database) guardReplicaApply() error {
	if !db.replica {
		return ErrNotReplica
	}
	if db.closed {
		return ErrClosed
	}
	return nil
}

// StateDigest returns a collision-resistant digest of the complete logical
// state: items (deleted included), ID high-water mark, schema versions,
// dirty marks, and the version tree — everything a snapshot serializes,
// hashed. Two databases that applied the same committed history digest
// identically, which is the replica-vs-primary differential the replication
// tests and the E11 harness gate on. A follower before its first bootstrap
// digests as "empty".
func (db *Database) StateDigest() (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.engine == nil {
		return "empty", nil
	}
	payload, err := db.encodeSnapshot()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}
