package seed

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// drainTap copies every record a subscription has buffered right now; the
// caller mutated the primary synchronously, so the tap is already fed.
func drainTap(t *testing.T, sub *storage.Subscription, want int) [][]byte {
	t.Helper()
	var recs [][]byte
	for len(recs) < want {
		batch, err := sub.Next(nil)
		if err != nil {
			t.Fatalf("tap Next: %v", err)
		}
		recs = append(recs, batch...)
	}
	return recs
}

// bootstrapReplica subscribes to a primary and replays the bootstrap into a
// fresh follower — the in-process equivalent of the wire feed. The caller
// owns the returned subscription's live tap.
func bootstrapReplica(t *testing.T, primary *Database) (*Database, *storage.Subscription) {
	t.Helper()
	sub, _, err := primary.SubscribeLog()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sub.Close)
	rep := NewFollower()
	snap, _ := sub.Snapshot()
	if err := rep.ApplyLogSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for _, seg := range sub.SealedSegments() {
		var recs [][]byte
		if err := sub.ReadSegment(seg, func(p []byte) error {
			recs = append(recs, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := rep.ApplyLogRecords(recs); err != nil {
			t.Fatal(err)
		}
	}
	sub.EndBootstrap()
	return rep, sub
}

// digestsEqual asserts the replica-vs-primary state differential.
func digestsEqual(t *testing.T, primary, replica *Database, when string) {
	t.Helper()
	pd, err := primary.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := replica.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if pd != rd {
		t.Fatalf("%s: state digests diverge: primary %s, replica %s", when, pd, rd)
	}
}

// TestReplicaBootstrapConverges: snapshot + sealed segments reproduce the
// primary's exact logical state, including versions and dirty marks.
func TestReplicaBootstrapConverges(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	defer db.Close()

	alarms := create(t, db, "Data", "Alarms")
	sensor := create(t, db, "Action", "Sensor")
	if _, err := db.CreateRelationship("Access", map[string]ID{"from": alarms, "by": sensor}); err != nil {
		t.Fatal(err)
	}
	text, _ := db.CreateSubObject(alarms, "Text")
	if _, err := db.CreateValueObject(text, "Selector", NewString("Representation")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("v1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(sensor); err != nil {
		t.Fatal(err)
	}

	rep, _ := bootstrapReplica(t, db)
	digestsEqual(t, db, rep, "after bootstrap")

	// The replica serves the read surface.
	v := rep.View()
	if _, ok := v.ObjectByName("Alarms"); !ok {
		t.Fatal("replica lost Alarms")
	}
	if got := len(rep.Versions()); got != 1 {
		t.Fatalf("replica versions = %d, want 1", got)
	}
}

// TestReplicaLiveApplyConverges: live tap records applied one call at a
// time — so a transaction batch is split across ApplyLogRecords calls —
// surface atomically and converge at every applied step.
func TestReplicaLiveApplyConverges(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	defer db.Close()
	create(t, db, "Data", "Alarms")
	rep, sub := bootstrapReplica(t, db)
	digestsEqual(t, db, rep, "after bootstrap")

	// A transaction batch: begin/end framing plus three engine records.
	tx, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	handler, err := tx.CreateObject("Data", "Handler")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateSubObject(handler, "Text"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateObject("Data", "Tail"); err != nil {
		t.Fatal(err)
	}

	recs := drainTap(t, sub, 1)
	before, err := rep.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	sawPartial := false
	for _, rec := range recs {
		if err := rep.ApplyLogRecords([][]byte{rec}); err != nil {
			t.Fatal(err)
		}
		// Mid-batch the replica's visible state must be the pre-batch
		// state: batches surface whole or not at all.
		d, err := rep.StateDigest()
		if err != nil {
			t.Fatal(err)
		}
		if d == before {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("expected at least one mid-batch step to leave visible state unchanged")
	}
	digestsEqual(t, db, rep, "after live apply")
	if _, ok := rep.View().ObjectByName("Handler"); !ok {
		t.Fatal("replica missing transacted object")
	}
}

// TestReplicaRefusesMutations: every mutating entry point on a follower
// answers ErrNotPrimary, and the primary-only SubscribeLog refuses
// chaining off a follower.
func TestReplicaRefusesMutations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	defer db.Close()
	alarms := create(t, db, "Data", "Alarms")
	rep, _ := bootstrapReplica(t, db)

	checks := map[string]error{
		"CreateObject": func() error { _, err := rep.CreateObject("Data", "X"); return err }(),
		"SetValue":     rep.SetValue(alarms, NewString("x")),
		"Delete":       rep.Delete(alarms),
		"Begin":        rep.Begin(),
		"BeginTx":      func() error { _, err := rep.BeginTx(); return err }(),
		"SaveVersion":  func() error { _, err := rep.SaveVersion("v"); return err }(),
		"SelectVersion": func() error {
			return rep.SelectVersion(VersionNumber{1})
		}(),
		"DeleteVersion": rep.DeleteVersion(VersionNumber{1}),
		"Vacuum":        func() error { _, err := rep.Vacuum(); return err }(),
		"Compact":       rep.Compact(),
		"SubscribeLog":  func() error { _, _, err := rep.SubscribeLog(); return err }(),
	}
	for name, err := range checks {
		if !errors.Is(err, ErrNotPrimary) {
			t.Errorf("%s on follower = %v, want ErrNotPrimary", name, err)
		}
	}

	// Apply calls are follower-only in the other direction.
	if err := db.ApplyLogRecords(nil); !errors.Is(err, ErrNotReplica) {
		t.Errorf("ApplyLogRecords on primary = %v, want ErrNotReplica", err)
	}
	// And an in-memory primary has no log to ship.
	mem, err := NewMemory(Figure3Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, _, err := mem.SubscribeLog(); !errors.Is(err, ErrNoLog) {
		t.Errorf("SubscribeLog on in-memory db = %v, want ErrNoLog", err)
	}
}

// TestReplicaCompactShedsInternChurn (intern-table leak regression): a long
// churn of unique short values grows the engine's append-only value intern
// table without bound; Compact must rebuild the tables from live rows and
// shed the dead entries.
func TestReplicaCompactShedsInternChurn(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	// CompactAfter large enough that compaction happens only when asked.
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock(), CompactAfter: 1 << 30})
	defer db.Close()

	alarms := create(t, db, "Data", "Alarms")
	text, err := db.CreateSubObject(alarms, "Text")
	if err != nil {
		t.Fatal(err)
	}
	val, err := db.CreateValueObject(text, "Selector", NewString("v-000000"))
	if err != nil {
		t.Fatal(err)
	}
	const churn = 500
	for i := 1; i <= churn; i++ {
		if err := db.SetValue(val, NewString(fmt.Sprintf("v-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	grown := db.SymbolCount()
	if grown < churn {
		t.Fatalf("intern table did not grow under churn: %d symbols after %d unique values", grown, churn)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	shed := db.SymbolCount()
	// One live value remains; the rebuilt tables must have shed nearly all
	// churned uniques (schema/class/name symbols are a small constant).
	if shed >= grown-churn+50 {
		t.Fatalf("Compact kept dead intern entries: %d symbols before, %d after (churn %d)", grown, shed, churn)
	}
	// State must be unchanged by the rebuild.
	v := db.View()
	if o, ok := v.Object(val); !ok || o.Value.Str() != fmt.Sprintf("v-%06d", churn) {
		t.Fatalf("live value wrong after rebuild: %v %v", o.Value, ok)
	}
	// And mutations continue against the rebuilt store.
	if _, err := db.CreateObject("Action", "PostCompact"); err != nil {
		t.Fatal(err)
	}
}
