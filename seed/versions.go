package seed

import (
	"fmt"
	"time"

	"repro/internal/item"
	"repro/internal/pattern"
	"repro/internal/version"
)

// Version management (paper, section "Versions"): explicit snapshots with
// delta storage, a decimal-classification history tree, alternatives by
// selecting historical versions, history retrieval, and read-only views to
// any saved version.

// VersionInfo describes one saved version.
type VersionInfo struct {
	Num           VersionNumber
	Note          string
	CreatedAt     time.Time
	SchemaVersion int
	DeltaSize     int
	Parent        VersionNumber // empty for the first version
}

// SaveVersion takes an explicit snapshot of the current state: only items
// changed since the previous version are stored (DeltaSnapshots mode). The
// new version becomes the basis of further work and its number is returned.
func (db *Database) SaveVersion(note string) (VersionNumber, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.replica {
		return nil, ErrNotPrimary
	}
	if db.engine.InTx() {
		// A version must never freeze a half-applied batch, and the gen
		// bump would let readers snapshot mid-transaction state.
		return nil, ErrTxOpen
	}
	if err := db.checkTransitions(); err != nil {
		return nil, err
	}
	at := db.clock()
	num, err := db.saveVersionLocked(note, at)
	if err != nil {
		return nil, err
	}
	db.gen++
	if db.store != nil {
		if err := db.store.Append(encSaveVersion(note, at, num)); err != nil {
			return nil, err
		}
		if err := db.store.Sync(); err != nil {
			return nil, err
		}
		if err := db.maybeCompact(); err != nil {
			return nil, err
		}
	}
	return num, nil
}

// saveVersionLocked captures the dirty set as a new version node.
//
// seed:locked-caller
func (db *Database) saveVersionLocked(note string, at time.Time) (VersionNumber, error) {
	if db.opts.Mode == FullSnapshots {
		db.engine.MarkAllDirty()
	}
	dirty := db.engine.DirtyIDs()
	delta := make([]version.Frozen, 0, len(dirty))
	for _, id := range dirty {
		kind, ok := db.engine.KindOf(id)
		if !ok {
			continue
		}
		var f version.Frozen
		f.Kind = kind
		if kind == item.KindObject {
			o, err := db.engine.Object(id)
			if err != nil {
				return nil, err
			}
			f.Obj = o
		} else {
			r, err := db.engine.Relationship(id)
			if err != nil {
				return nil, err
			}
			f.Rel = r
		}
		delta = append(delta, f)
	}
	node, err := db.vers.Freeze(delta, note, db.engine.Schema().Version(), at)
	if err != nil {
		return nil, err
	}
	db.engine.ClearDirty()
	return node.Num, nil
}

// SelectVersion makes a saved version the basis of further work: the
// current state is replaced by the view to that version. Work saved on top
// of a historical version becomes an alternative. The current state must be
// saved first (use SelectVersionDiscard to drop unsaved changes).
func (db *Database) SelectVersion(num VersionNumber) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.replica {
		return ErrNotPrimary
	}
	if db.engine.DirtyCount() > 0 {
		return fmt.Errorf("%w: %d changed items", ErrUnsavedChanges, db.engine.DirtyCount())
	}
	return db.selectVersionJournaled(num)
}

// SelectVersionDiscard is SelectVersion dropping unsaved changes.
func (db *Database) SelectVersionDiscard(num VersionNumber) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.replica {
		return ErrNotPrimary
	}
	return db.selectVersionJournaled(num)
}

// selectVersionJournaled restores a version and journals the switch.
//
// seed:locked-caller
func (db *Database) selectVersionJournaled(num VersionNumber) error {
	if db.engine.InTx() {
		return ErrTxOpen // Restore would clobber the open transaction
	}
	if err := db.selectVersionLocked(num); err != nil {
		return err
	}
	// selectVersionLocked already bumped the generation.
	if db.store != nil {
		if err := db.store.Append(encSelectVersion(num)); err != nil {
			return err
		}
		return db.store.Sync()
	}
	return nil
}

// selectVersionLocked restores the materialized state of a version.
//
// seed:locked-caller
func (db *Database) selectVersionLocked(num VersionNumber) error {
	states, err := db.vers.Materialize(num)
	if err != nil {
		return err
	}
	objs := make([]item.Object, 0, len(states))
	rels := make([]item.Relationship, 0)
	for _, f := range states {
		if f.Kind == item.KindObject {
			objs = append(objs, f.Obj)
		} else {
			rels = append(rels, f.Rel)
		}
	}
	db.engine.Restore(objs, rels)
	// The engine state is replaced from here on: bump the generation so
	// stale snapshots are never served, even when a later step fails.
	db.gen++
	// Frozen states carry schema bindings from their creation time;
	// re-bind them to the current schema (selection fails if evolution
	// removed a class the version still uses).
	if err := db.engine.RebindSchema(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSchemaChange, err)
	}
	if _, err := db.vers.Select(num); err != nil {
		return err
	}
	return nil
}

// DeleteVersion removes a leaf version. Versions cannot be modified,
// except for deletion.
func (db *Database) DeleteVersion(num VersionNumber) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.replica {
		return ErrNotPrimary
	}
	if db.engine.InTx() {
		return ErrTxOpen // the gen bump would expose mid-transaction state
	}
	if err := db.vers.Delete(num); err != nil {
		return err
	}
	db.gen++
	if db.store != nil {
		if err := db.store.Append(encDeleteVersion(num)); err != nil {
			return err
		}
		return db.store.Sync()
	}
	return nil
}

// Vacuum physically removes deletion tombstones that no saved version
// references: items are marked as deleted instead of being removed (which
// makes version creation cheap), and Vacuum reclaims the marks once they
// can no longer matter to any view. Returns the number of purged items.
func (db *Database) Vacuum() (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if db.replica {
		return 0, ErrNotPrimary
	}
	if db.engine.InTx() {
		return 0, ErrTxOpen
	}
	n, err := db.vacuumLocked()
	if err != nil {
		return 0, err
	}
	db.gen++
	if db.store != nil && n > 0 {
		e := newRecordEncoder(recVacuum)
		if err := db.store.Append(e.Bytes()); err != nil {
			return n, err
		}
		return n, db.store.Sync()
	}
	return n, nil
}

// vacuumLocked drops version deltas no longer referenced by any node.
//
// seed:locked-caller
func (db *Database) vacuumLocked() (int, error) {
	referenced := make(map[ID]bool)
	for _, node := range db.vers.List() {
		for _, id := range node.DeltaIDs() {
			referenced[id] = true
		}
	}
	return db.engine.PurgeDeleted(func(id ID) bool { return referenced[id] })
}

// VersionView returns the user-facing view to a saved version: retrieval
// from an old version works exactly like retrieval from the current one.
// The view is interpreted under the schema version recorded by the version.
// Version views are immutable and need no further synchronization.
func (db *Database) VersionView(num VersionNumber) (View, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	node, err := db.vers.Lookup(num)
	if err != nil {
		return nil, err
	}
	sch, err := db.schemaAt(node.SchemaVer)
	if err != nil {
		return nil, err
	}
	states, err := db.vers.Materialize(num)
	if err != nil {
		return nil, err
	}
	return pattern.NewSpliced(version.NewView(sch, states)), nil
}

// Versions lists all saved versions sorted by number.
func (db *Database) Versions() []VersionInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	nodes := db.vers.List()
	out := make([]VersionInfo, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, infoOf(n))
	}
	return out
}

// BaseVersion returns the version the current work is based on (ok=false
// before the first snapshot).
func (db *Database) BaseVersion() (VersionInfo, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	b := db.vers.Base()
	if b == nil {
		return VersionInfo{}, false
	}
	return infoOf(b), true
}

// NextVersionNumber previews the number SaveVersion would assign.
func (db *Database) NextVersionNumber() VersionNumber {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.vers.NextNumber()
}

// HistoryOf lists the versions that store a state of the given item,
// optionally restricted to the classification subtree rooted at prefix —
// "find all versions of object 'AlarmHandler', beginning with version 2.0".
func (db *Database) HistoryOf(id ID, prefix VersionNumber) []VersionInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	nodes := db.vers.VersionsOf(id, prefix)
	out := make([]VersionInfo, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, infoOf(n))
	}
	return out
}

func infoOf(n *version.Node) VersionInfo {
	info := VersionInfo{
		Num:           n.Num,
		Note:          n.Note,
		CreatedAt:     n.CreatedAt,
		SchemaVersion: n.SchemaVer,
		DeltaSize:     n.DeltaSize(),
	}
	if p := n.Parent(); p != nil {
		info.Parent = p.Num
	}
	return info
}
