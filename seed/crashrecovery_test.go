package seed

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/item"
)

// Crash-recovery property test: truncating the live write-ahead-log segment
// at every record boundary — and at sampled mid-record offsets — must
// recover a state that is exactly one of the committed prefixes of the
// workload. In particular no truncation may ever surface a torn transaction
// batch: a multi-record check-in either recovers whole or not at all.

// dumpState renders the raw view canonically (IDs excluded: replayed
// databases re-derive IDs, paths and values are the identity).
func dumpState(db *Database) string {
	v := db.RawView()
	var lines []string
	for _, id := range v.Objects() {
		o, ok := v.Object(id)
		if !ok {
			continue
		}
		path := "?"
		if p, ok := item.PathOf(v, id); ok {
			path = p.String()
		}
		lines = append(lines, fmt.Sprintf("O %s %s %s", path, o.Class.QualifiedName(), o.Value.String()))
	}
	for _, id := range v.Relationships() {
		r, ok := v.Relationship(id)
		if !ok {
			continue
		}
		name := "inherits"
		if !r.Inherits {
			name = r.Assoc.Name()
		}
		var ends []string
		for _, e := range r.Ends {
			ep := "?"
			if p, ok := item.PathOf(v, e.Object); ok {
				ep = p.String()
			}
			ends = append(ends, e.Role+"="+ep)
		}
		sort.Strings(ends)
		lines = append(lines, fmt.Sprintf("R %s %s", name, strings.Join(ends, ",")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// walBoundaries scans one segment file and returns every byte offset that
// ends an intact record (starting at the segment header), replicating the
// documented framing: 16-byte header, then length+crc+payload records.
func walBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const headerSize, recHeader = 16, 8
	offsets := []int64{headerSize}
	off := headerSize
	for off+recHeader <= len(data) {
		length := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length == 0xFFFFFFFF && crc == 0x5EA1C0DE { // seal marker
			off += recHeader
			offsets = append(offsets, int64(off))
			continue
		}
		end := off + recHeader + int(length)
		if end > len(data) {
			break
		}
		off = end
		offsets = append(offsets, int64(off))
	}
	return offsets
}

// truncatedCopy clones the store directory with the given WAL segment
// truncated to size bytes — the on-disk image a crash at that point leaves.
func truncatedCopy(t *testing.T, srcDir, segName string, size int64) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == segName && int64(len(data)) > size {
			data = data[:size]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestCrashRecoveryCommittedPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Schema: Figure3Schema()})
	if err != nil {
		t.Fatal(err)
	}

	// Every committed unit (one auto-commit journal record, or one whole
	// transaction batch) captures the canonical state it leaves behind; a
	// recovered database must land exactly on one of these.
	var states []string
	capture := func() { states = append(states, dumpState(db)) }
	capture() // fresh: schema record only

	o1, err := db.CreateObject("Data", "O1")
	if err != nil {
		t.Fatal(err)
	}
	capture()
	if _, err := db.CreateObject("Action", "O2"); err != nil {
		t.Fatal(err)
	}
	capture()
	d1, err := db.CreateSubObject(o1, "Description")
	if err != nil {
		t.Fatal(err)
	}
	capture()
	if err := db.SetValue(d1, NewString("v1")); err != nil {
		t.Fatal(err)
	}
	capture()

	// A multi-record batch: its byte range in the log is the interval where
	// every truncation must fall back to the pre-batch state.
	preBatch := states[len(states)-1]
	sizeBefore := db.Stats().LogBytes
	tx, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetValue(d1, NewString("b1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateObject("Data", "B1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateValueObject(o1, "Text", NewString("")); err == nil {
		t.Fatal("value on structured Text accepted")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	capture()
	sizeAfter := db.Stats().LogBytes

	// A single-record transaction (no framing) and two interleaved
	// disjoint transactions committed back to back.
	tx2, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetValue(d1, NewString("s1")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	capture()
	txA, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	txB, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := txA.SetValue(d1, NewString("c1")); err != nil {
		t.Fatal(err)
	}
	ca, err := txB.CreateObject("Data", "C2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txA.CreateObject("Data", "C1"); err != nil {
		t.Fatal(err)
	}
	if _, err := txB.CreateValueObject(ca, "Description", NewString("c2d")); err != nil {
		t.Fatal(err)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	capture()
	if err := txB.Commit(); err != nil {
		t.Fatal(err)
	}
	capture()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	segName := "wal-000001.seed"
	boundaries := walBoundaries(t, filepath.Join(dir, segName))
	if len(boundaries) < 10 {
		t.Fatalf("workload produced only %d records", len(boundaries))
	}

	recoveredAt := func(size int64) string {
		cp := truncatedCopy(t, dir, segName, size)
		re, err := Open(cp, Options{Schema: Figure3Schema()})
		if err != nil {
			t.Fatalf("reopen truncated at %d: %v", size, err)
		}
		defer re.Close()
		return dumpState(re)
	}
	stateIndex := func(size int64, dump string) int {
		for i, s := range states {
			if s == dump {
				return i
			}
		}
		t.Fatalf("truncation at %d recovered a state outside every committed prefix:\n%s", size, dump)
		return -1
	}

	// Every record boundary — and a sample of mid-record offsets — recovers
	// a committed prefix, monotonically in the truncation point.
	last := -1
	for _, b := range boundaries {
		dump := recoveredAt(b)
		idx := stateIndex(b, dump)
		if idx < last {
			t.Errorf("boundary %d: state index went backwards (%d after %d)", b, idx, last)
		}
		last = idx
		for _, mid := range []int64{b + 1, b + 5} {
			if mid >= boundaries[len(boundaries)-1] {
				continue
			}
			if midIdx := stateIndex(mid, recoveredAt(mid)); midIdx > idx {
				t.Errorf("mid-record truncation at %d advanced past its boundary state", mid)
			}
		}
	}
	if final := recoveredAt(boundaries[len(boundaries)-1]); final != states[len(states)-1] {
		t.Errorf("full log does not recover the final state")
	}

	// No torn batch: every truncation strictly inside the multi-record
	// batch's byte range recovers exactly the pre-batch state.
	for _, size := range []int64{sizeBefore + 1, (sizeBefore + sizeAfter) / 2, sizeAfter - 1} {
		if got := recoveredAt(size); got != preBatch {
			t.Errorf("truncation at %d inside the batch surfaced a torn state:\n%s", size, got)
		}
	}

	// A database reopened over a torn batch keeps working: the fragment is
	// neutralized durably, later appends replay cleanly.
	cp := truncatedCopy(t, dir, segName, (sizeBefore+sizeAfter)/2)
	re, err := Open(cp, Options{Schema: Figure3Schema()})
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpState(re); got != preBatch {
		t.Fatalf("torn-batch reopen: wrong base state:\n%s", got)
	}
	if _, err := re.CreateObject("Data", "AfterTear"); err != nil {
		t.Fatal(err)
	}
	want := dumpState(re)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(cp, Options{Schema: Figure3Schema()})
	if err != nil {
		t.Fatalf("second reopen after torn batch: %v", err)
	}
	defer re2.Close()
	if got := dumpState(re2); got != want {
		t.Errorf("state after continuing over a torn batch diverged:\n got %s\nwant %s", got, want)
	}
}
