package seed

import (
	"path/filepath"
	"testing"
)

func TestVacuumPurgesUnreferencedTombstones(t *testing.T) {
	db := memDB(t, Figure3Schema())
	// Scratch: created and deleted without any version seeing it.
	scratch := create(t, db, "Action", "Scratch")
	if err := db.Delete(scratch); err != nil {
		t.Fatal(err)
	}
	// Released: present in version 1.0, deleted afterwards — its
	// tombstone must survive Vacuum so 1.0 stays reconstructible and the
	// next SaveVersion can record the deletion.
	released := create(t, db, "Action", "Released")
	v1, err := db.SaveVersion("release")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(released); err != nil {
		t.Fatal(err)
	}

	n, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("purged %d items, want 1 (only the scratch tombstone)", n)
	}
	// The released tombstone is still there; saving freezes the deletion.
	if _, err := db.SaveVersion("after delete"); err != nil {
		t.Fatal(err)
	}
	view1, err := db.VersionView(v1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := view1.ObjectByName("Released"); !ok {
		t.Error("1.0 lost the released object after vacuum")
	}
	if _, ok := db.View().ObjectByName("Released"); ok {
		t.Error("deleted object visible in current state")
	}
	// Now the deletion is referenced by version 2.0: a second vacuum must
	// keep it.
	if n, _ := db.Vacuum(); n != 0 {
		t.Errorf("second vacuum purged %d items", n)
	}
	// Names freed by vacuum are reusable.
	if _, err := db.CreateObject("Action", "Scratch"); err != nil {
		t.Errorf("name not reusable after vacuum: %v", err)
	}
}

func TestVacuumPersists(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	a := create(t, db, "Action", "A")
	_ = db.Delete(a)
	if n, err := db.Vacuum(); err != nil || n != 1 {
		t.Fatalf("vacuum = %d, %v", n, err)
	}
	b := create(t, db, "Action", "B")
	db.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	st := db2.Stats()
	if st.Core.DeletedObjects != 0 {
		t.Errorf("tombstones after replayed vacuum = %d", st.Core.DeletedObjects)
	}
	if _, ok := db2.View().Object(b); !ok {
		t.Error("post-vacuum object lost")
	}
	// ID allocation still monotonic.
	c, err := db2.CreateObject("Action", "C")
	if err != nil || c <= b {
		t.Errorf("id after vacuum replay = %d (b=%d), %v", c, b, err)
	}
}

func TestCartesianReExport(t *testing.T) {
	pairs := Cartesian([]ID{1, 2}, []ID{3, 4})
	if len(pairs) != 4 || pairs[0].Left != 1 || pairs[3].Right != 4 {
		t.Errorf("cartesian = %v", pairs)
	}
}
