package seed

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/sdl"
	"repro/internal/storage"
)

// Database-level journal records. Tags below 16 belong to the engine
// (core); tags here cover schema and version operations so that a replayed
// log reproduces the complete database including its version tree.
const (
	recSchema        byte = 16 // SDL text of a schema version
	recSaveVersion   byte = 17 // note, timestamp, expected number
	recSelectVersion byte = 18 // version number
	recDeleteVersion byte = 19 // version number
	recVacuum        byte = 20 // purge unreferenced tombstones (no payload)

	// Transaction batch framing. A committed multi-record transaction is
	// appended as recTxBegin, the data records, recTxEnd — contiguously, so
	// recovery applies the whole batch or none of it. A crash can tear the
	// tail mid-batch: replay then buffers records that never see their end
	// marker and drops them, and the next open neutralizes the fragment
	// with recTxAbort so later appends are not mistaken for its
	// continuation. Single-record commits skip the framing (one record is
	// atomic by construction).
	recTxBegin byte = 21 // start of a committed transaction batch
	recTxEnd   byte = 22 // end of a committed transaction batch
	recTxAbort byte = 23 // torn batch fragment precedes; discard it
)

// encTxBoundary encodes one of the single-byte batch framing records.
func encTxBoundary(tag byte) []byte { return []byte{tag} }

// newRecordEncoder starts an encoder with the record tag written.
func newRecordEncoder(tag byte) *storage.Encoder {
	e := storage.NewEncoder(nil)
	e.Byte(tag)
	return e
}

func encSchemaRecord(text string) []byte {
	e := storage.NewEncoder(nil)
	e.Byte(recSchema)
	e.String(text)
	return e.Bytes()
}

func encSaveVersion(note string, at time.Time, num VersionNumber) []byte {
	e := storage.NewEncoder(nil)
	e.Byte(recSaveVersion)
	e.String(note)
	e.Time(at)
	e.Ints(num)
	return e.Bytes()
}

func encSelectVersion(num VersionNumber) []byte {
	e := storage.NewEncoder(nil)
	e.Byte(recSelectVersion)
	e.Ints(num)
	return e.Bytes()
}

func encDeleteVersion(num VersionNumber) []byte {
	e := storage.NewEncoder(nil)
	e.Byte(recDeleteVersion)
	e.Ints(num)
	return e.Bytes()
}

// recovery adapts the database to storage.RecoveryHandler. Transaction
// batches (recTxBegin ... recTxEnd) are buffered and applied only when
// their end marker arrives: a batch torn by a crash mid-append must never
// surface half-applied.
type recovery struct {
	db      *Database
	batch   [][]byte // buffered data records of an open batch
	inBatch bool
}

// LoadSnapshot restores the full state written by Compact.
//
// seed:locked-caller — recovery runs from newDatabase before the
// *Database value is published; no concurrent access is possible.
func (r *recovery) LoadSnapshot(payload []byte) error {
	return r.db.loadSnapshot(payload)
}

// ApplyRecord dispatches one write-ahead log record.
//
// seed:locked-caller — recovery runs from newDatabase before the
// *Database value is published; no concurrent access is possible.
func (r *recovery) ApplyRecord(payload []byte) error {
	if len(payload) == 0 {
		return core.ErrBadRecord
	}
	db := r.db
	tag := payload[0]
	if r.inBatch {
		switch {
		case tag == recTxEnd:
			r.inBatch = false
			for _, rec := range r.batch {
				if db.engine == nil {
					return fmt.Errorf("%w: data record before schema record", core.ErrBadRecord)
				}
				if err := db.engine.ApplyRecord(rec); err != nil {
					return err
				}
			}
			r.batch = r.batch[:0]
			return nil
		case tag == recTxBegin:
			// A new batch while one is open: the previous batch is a torn
			// fragment (the tail was truncated mid-batch and the database
			// reopened before batch framing gained the abort record) —
			// drop it and start buffering the new one.
			r.batch = r.batch[:0]
			return nil
		case tag == recTxAbort:
			r.inBatch = false
			r.batch = r.batch[:0]
			return nil
		case tag <= core.RecDataMax:
			// The scan loop reuses its record buffer; keep a copy.
			r.batch = append(r.batch, append([]byte(nil), payload...))
			return nil
		default:
			// A database-level record can only follow a torn fragment:
			// discard the fragment and dispatch the record normally.
			r.inBatch = false
			r.batch = r.batch[:0]
		}
	}
	if tag <= core.RecDataMax {
		if db.engine == nil {
			return fmt.Errorf("%w: data record before schema record", core.ErrBadRecord)
		}
		return db.engine.ApplyRecord(payload)
	}
	switch tag {
	case recTxBegin:
		r.inBatch = true
		r.batch = r.batch[:0]
		return nil
	case recTxEnd, recTxAbort:
		// An end or abort without an open batch is the benign residue of a
		// healed fragment; nothing to do.
		return nil
	}
	d := storage.NewDecoder(payload[1:])
	switch tag {
	case recSchema:
		text, err := d.String()
		if err != nil {
			return err
		}
		sch, err := sdl.Parse(text)
		if err != nil {
			return fmt.Errorf("seed: replaying schema record: %w", err)
		}
		if db.engine == nil {
			en, err := core.NewEngine(sch)
			if err != nil {
				return err
			}
			en.BeginReplay()
			db.engine = en
			db.schemas = []*Schema{sch}
			return nil
		}
		// Schema evolution: versions were validated when first applied.
		if sch.Version() != len(db.schemas)+1 {
			return fmt.Errorf("seed: schema record version %d, expected %d",
				sch.Version(), len(db.schemas)+1)
		}
		if err := db.engine.SetSchema(sch); err != nil {
			return err
		}
		if err := db.engine.RebindSchema(); err != nil {
			return err
		}
		db.schemas = append(db.schemas, sch)
		return nil

	case recSaveVersion:
		note, err := d.String()
		if err != nil {
			return err
		}
		at, err := d.Time()
		if err != nil {
			return err
		}
		want, err := d.Ints()
		if err != nil {
			return err
		}
		num, err := db.saveVersionLocked(note, at)
		if err != nil {
			return err
		}
		if !num.Equal(VersionNumber(want)) {
			return fmt.Errorf("seed: replayed version %s, journal recorded %s",
				num, ident.VersionNumber(want))
		}
		return nil

	case recSelectVersion:
		num, err := d.Ints()
		if err != nil {
			return err
		}
		return db.selectVersionLocked(num)

	case recDeleteVersion:
		num, err := d.Ints()
		if err != nil {
			return err
		}
		return db.vers.Delete(ident.VersionNumber(num))

	case recVacuum:
		// The keep-set is deterministic from the replayed version tree.
		_, err := db.vacuumLocked()
		return err
	}
	return fmt.Errorf("%w: tag %d", core.ErrBadRecord, tag)
}
