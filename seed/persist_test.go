package seed

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/item"
	"repro/internal/storage"
)

func fixedClock() func() time.Time {
	t0 := time.Date(1986, 2, 5, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Minute)
	}
}

func openDB(t *testing.T, dir string, opts Options) *Database {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenFreshRequiresSchema(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "db"), Options{}); !errors.Is(err, ErrNoSchema) {
		t.Fatalf("Open without schema: %v", err)
	}
}

func TestReopenReplaysLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})

	alarms := create(t, db, "Data", "Alarms")
	sensor := create(t, db, "Action", "Sensor")
	acc, err := db.CreateRelationship("Access", map[string]ID{"from": alarms, "by": sensor})
	if err != nil {
		t.Fatal(err)
	}
	text, _ := db.CreateSubObject(alarms, "Text")
	sel, _ := db.CreateValueObject(text, "Selector", NewString("Representation"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	v := db2.View()
	if _, ok := v.ObjectByName("Alarms"); !ok {
		t.Fatal("Alarms lost on reopen")
	}
	if o, ok := v.Object(sel); !ok || o.Value.Str() != "Representation" {
		t.Errorf("Selector after reopen = %v %v", o.Value, ok)
	}
	if r, ok := v.Relationship(acc); !ok || r.Assoc.Name() != "Access" {
		t.Errorf("Access after reopen: %v", ok)
	}
	// Mutations continue: IDs never collide.
	id, err := db2.CreateObject("Action", "New")
	if err != nil {
		t.Fatal(err)
	}
	if id <= sel {
		t.Errorf("ID %d not above high-water mark %d", id, sel)
	}
}

func TestReopenReplaysVersionsAndReclassify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	alarms := create(t, db, "Thing", "Alarms")
	v1, err := db.SaveVersion("vague")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Reclassify(alarms, "Data"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("precise"); err != nil {
		t.Fatal(err)
	}
	// Branch an alternative.
	if err := db.SelectVersion(v1); err != nil {
		t.Fatal(err)
	}
	if err := db.Reclassify(alarms, "Action"); err != nil {
		t.Fatal(err)
	}
	alt, err := db.SaveVersion("alternative interpretation")
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	infos := db2.Versions()
	if len(infos) != 3 {
		t.Fatalf("versions after reopen = %d", len(infos))
	}
	base, ok := db2.BaseVersion()
	if !ok || !base.Num.Equal(alt) {
		t.Errorf("base after reopen = %v", base.Num)
	}
	// Current state is the alternative (Alarms is an Action).
	if o, ok := db2.View().ObjectByName("Alarms"); ok {
		obj, _ := db2.View().Object(o)
		if obj.Class.QualifiedName() != "Action" {
			t.Errorf("class after reopen = %s", obj.Class.QualifiedName())
		}
	} else {
		t.Fatal("Alarms lost")
	}
	// The trunk version still shows Data.
	view2, err := db2.VersionView(MustVersion("2.0"))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := view2.ObjectByName("Alarms")
	o, _ := view2.Object(id)
	if o.Class.QualifiedName() != "Data" {
		t.Errorf("trunk class = %s", o.Class.QualifiedName())
	}
}

func TestReopenReplaysPatternsAndDeletes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	pat, _ := db.CreatePatternObject("Action", "PO1")
	common := create(t, db, "Data", "Common")
	if _, err := db.CreateRelationship("Access", map[string]ID{"from": common, "by": pat}); err != nil {
		t.Fatal(err)
	}
	variant := create(t, db, "Action", "VariantA")
	if _, err := db.Inherit(pat, variant); err != nil {
		t.Fatal(err)
	}
	doomed := create(t, db, "Data", "Doomed")
	if err := db.Delete(doomed); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	if got := db2.InheritorsOf(pat); len(got) != 1 || got[0] != variant {
		t.Errorf("inheritors after reopen = %v", got)
	}
	if got := len(db2.View().RelationshipsOf(variant)); got != 1 {
		t.Errorf("spliced rels after reopen = %d", got)
	}
	if _, ok := db2.View().ObjectByName("Doomed"); ok {
		t.Error("deleted object resurrected")
	}
	if _, ok := db2.View().ObjectByName("PO1"); ok {
		t.Error("pattern visible after reopen")
	}
}

func TestCompactionRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	alarms := create(t, db, "Data", "Alarms")
	_, _ = db.CreateValueObject(alarms, "Description", NewString("doc"))
	v1, _ := db.SaveVersion("one")
	sensor := create(t, db, "Action", "Sensor")
	_, _ = db.CreateRelationship("Access", map[string]ID{"from": alarms, "by": sensor})
	// Unsaved changes at compaction time must survive too.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction writes land in the fresh WAL.
	create(t, db, "Action", "PostCompact")
	db.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	for _, name := range []string{"Alarms", "Sensor", "PostCompact"} {
		if _, ok := db2.View().ObjectByName(name); !ok {
			t.Errorf("%s lost after compaction", name)
		}
	}
	if len(db2.Versions()) != 1 {
		t.Fatalf("versions after compaction = %d", len(db2.Versions()))
	}
	// Version view still works from the snapshot-encoded tree.
	view, err := db2.VersionView(v1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := view.ObjectByName("Alarms"); !ok {
		t.Error("version view lost Alarms")
	}
	if _, ok := view.ObjectByName("Sensor"); ok {
		t.Error("version view shows post-version object")
	}
	// The dirty set survived: saving now only freezes post-v1 changes.
	v2, err := db2.SaveVersion("two")
	if err != nil {
		t.Fatal(err)
	}
	infos := db2.Versions()
	if !infos[len(infos)-1].Num.Equal(v2) {
		t.Fatalf("latest version = %v", infos[len(infos)-1].Num)
	}
	if infos[len(infos)-1].DeltaSize != 3 { // Sensor, Access, PostCompact
		t.Errorf("delta after compaction = %d, want 3", infos[len(infos)-1].DeltaSize)
	}
}

func TestSchemaEvolutionPersists(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	create(t, db, "Data", "Alarms")
	_, _ = db.SaveVersion("v1 schema1")
	err := db.EvolveSchema(func(s *Schema) error {
		_, err := s.AddClass("Module")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	create(t, db, "Module", "Kernel")
	db.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	if db2.SchemaVersion() != 2 {
		t.Fatalf("schema version after reopen = %d", db2.SchemaVersion())
	}
	if _, ok := db2.View().ObjectByName("Kernel"); !ok {
		t.Error("Module object lost")
	}
	// Compact (snapshot now carries two schemas), reopen again.
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db3.Close()
	if db3.SchemaVersion() != 2 {
		t.Fatalf("schema version after compaction = %d", db3.SchemaVersion())
	}
	info := db3.Versions()[0]
	if info.SchemaVersion != 1 {
		t.Errorf("old version's schema = %d", info.SchemaVersion)
	}
	if _, err := db3.SchemaAt(1); err != nil {
		t.Errorf("historical schema lost: %v", err)
	}
}

func TestTornLogRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure2Schema(), Clock: fixedClock()})
	create(t, db, "Data", "Good")
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Simulate a crash mid-append: garbage at the tail of the last (and
	// here only) WAL segment.
	wal := filepath.Join(dir, storage.SegmentFile(1))
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	if _, ok := db2.View().ObjectByName("Good"); !ok {
		t.Error("intact record lost after torn tail")
	}
	// Appending after recovery works.
	create(t, db2, "Data", "AfterCrash")
}

func TestAutoCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure2Schema(), Clock: fixedClock(), CompactAfter: 2048})
	for i := 0; i < 200; i++ {
		if _, err := db.CreateObject("Data", "Obj"+itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if sz := db.Stats().LogBytes; sz > 4096 {
		t.Errorf("auto-compaction did not keep the log bounded: %d bytes", sz)
	}
	db.Close()
	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	if got := db2.Stats().Core.Objects; got != 200 {
		t.Errorf("objects after auto-compaction reopen = %d", got)
	}
}

// lastSegment returns the path and index of the highest-numbered WAL
// segment in dir.
func lastSegment(t *testing.T, dir string) (string, uint64) {
	t.Helper()
	var last uint64
	for n := uint64(1); ; n++ {
		if _, err := os.Stat(filepath.Join(dir, storage.SegmentFile(n))); err != nil {
			break
		}
		last = n
	}
	if last == 0 {
		t.Fatal("no WAL segments found")
	}
	return filepath.Join(dir, storage.SegmentFile(last)), last
}

// tinySegDB opens a database whose WAL rotates every 512 bytes and fills it
// with enough objects to span several segments.
func tinySegDB(t *testing.T, dir string) *Database {
	t.Helper()
	db := openDB(t, dir, Options{Schema: Figure2Schema(), Clock: fixedClock(), SegmentSize: 512})
	for i := 0; i < 60; i++ {
		create(t, db, "Data", "Seg"+itoa(i))
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSegmentedWALReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := tinySegDB(t, dir)
	if segs := db.Stats().LogSegments; segs < 2 {
		t.Fatalf("expected multiple WAL segments, got %d", segs)
	}
	db.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock(), SegmentSize: 512})
	defer db2.Close()
	if got := db2.Stats().Core.Objects; got != 60 {
		t.Errorf("objects after segmented reopen = %d, want 60", got)
	}
}

func TestTornTailInLastSegmentRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	tinySegDB(t, dir).Close()
	path, _ := lastSegment(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{99, 0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock(), SegmentSize: 512})
	defer db2.Close()
	if got := db2.Stats().Core.Objects; got != 60 {
		t.Errorf("objects after torn tail = %d, want 60", got)
	}
}

func TestCorruptSealedSegmentSurfacesErrCorrupt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	tinySegDB(t, dir).Close()
	// Corrupt a record in the middle of the FIRST (sealed) segment.
	path := filepath.Join(dir, storage.SegmentFile(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Clock: fixedClock(), SegmentSize: 512}); !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("corrupt sealed segment: %v", err)
	}
}

func TestMissingFinalSegmentSurfacesErrCorrupt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	tinySegDB(t, dir).Close()
	path, last := lastSegment(t, dir)
	if last < 2 {
		t.Fatalf("need >= 2 segments, got %d", last)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Clock: fixedClock(), SegmentSize: 512}); !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("missing final segment: %v", err)
	}
}

func TestGroupCommitPolicy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure2Schema(), Clock: fixedClock(), SyncPolicy: SyncGroupCommit})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := db.CreateObject("Data", "G"+itoa(g*10+i)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	if got := db2.Stats().Core.Objects; got != 40 {
		t.Errorf("objects after group-commit reopen = %d, want 40", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "a0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return "a" + s
}

func TestFullSnapshotsMode(t *testing.T) {
	db, err := NewMemory(Figure2Schema())
	if err != nil {
		t.Fatal(err)
	}
	db.opts.Mode = FullSnapshots
	create(t, db, "Data", "A")
	_, _ = db.SaveVersion("one")
	create(t, db, "Data", "B")
	v2, _ := db.SaveVersion("two")
	infos := db.Versions()
	// Full mode: the second version stores both items again.
	if infos[1].DeltaSize != 2 {
		t.Errorf("full snapshot delta = %d, want 2", infos[1].DeltaSize)
	}
	view, _ := db.VersionView(v2)
	if _, ok := view.ObjectByName("A"); !ok {
		t.Error("full snapshot lost A")
	}
}

// TestNoCompactionInsideTransaction: auto-compaction must never run while
// a transaction is open — a snapshot taken mid-batch would persist
// uncommitted operations (and truncate the log before their journal
// records exist), so a rollback could leave phantom data on disk.
func TestNoCompactionInsideTransaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	// A threshold small enough that the transaction's operations would
	// trip compaction if it were (wrongly) considered mid-batch.
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock(), CompactAfter: 1})

	keep := create(t, db, "Data", "Keep")
	// The tiny threshold compacts eagerly outside transactions; record the
	// snapshot state the transaction must leave untouched.
	preTx, err := os.Stat(filepath.Join(dir, "snapshot.seed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.CreateValueObject(keep, "Description", NewString("doomed")); err != nil {
			// Description is 0..1; only the first create succeeds — use
			// fresh objects instead to generate volume.
			break
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := db.CreateObject("Data", "Doomed"+string(rune('A'+i))); err != nil {
			t.Fatal(err)
		}
	}
	midTx, err := os.Stat(filepath.Join(dir, "snapshot.seed"))
	if err != nil {
		t.Fatal(err)
	}
	if !midTx.ModTime().Equal(preTx.ModTime()) || midTx.Size() != preTx.Size() {
		t.Fatal("compaction ran inside the open transaction")
	}
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Force the deferred compaction on the next committed operation and
	// prove the rolled-back batch never reached disk.
	create(t, db, "Data", "After")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDB(t, dir, Options{Clock: fixedClock()})
	defer db2.Close()
	if _, ok := db2.View().ObjectByName("DoomedA"); ok {
		t.Error("rolled-back object persisted to disk")
	}
	if _, err := db2.ResolvePath("Keep.Description"); err == nil {
		t.Error("rolled-back value object persisted to disk")
	}
	for _, name := range []string{"Keep", "After"} {
		if _, ok := db2.View().ObjectByName(name); !ok {
			t.Errorf("committed object %s lost", name)
		}
	}
}

// TestSnapshotFormatV1Load: databases compacted before the symbol-coded
// snapshot format landed must still load. The test encodes the state in the
// retired format-1 layout (inline strings per item, no symbol table) and
// feeds it through the recovery path.
func TestSnapshotFormatV1Load(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openDB(t, dir, Options{Schema: Figure3Schema(), Clock: fixedClock()})
	defer db.Close()

	alarms := create(t, db, "Data", "Alarms")
	sensor := create(t, db, "Action", "Sensor")
	acc, err := db.CreateRelationship("Access", map[string]ID{"from": alarms, "by": sensor})
	if err != nil {
		t.Fatal(err)
	}
	text, _ := db.CreateSubObject(alarms, "Text")
	sel, err := db.CreateValueObject(text, "Selector", NewString("Representation"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("v1"); err != nil {
		t.Fatal(err)
	}

	// Encode the current state exactly as the retired format 1 did, under
	// the lock the engine and version fields are guarded by.
	db.mu.RLock()
	e := storage.NewEncoder(nil)
	e.Uint64(snapshotFormatV1)
	e.Uint64(uint64(db.engine.NextID()))
	e.Int(len(db.schemas))
	for _, sch := range db.schemas {
		e.String(RenderSDL(sch))
	}
	objs, rels := db.engine.CaptureAll()
	e.Int(len(objs))
	for i := range objs {
		item.EncodeObject(e, &objs[i])
	}
	e.Int(len(rels))
	for i := range rels {
		item.EncodeRelationship(e, &rels[i])
	}
	dirty := db.engine.DirtyIDs()
	e.Int(len(dirty))
	for _, id := range dirty {
		e.Uint64(uint64(id))
	}
	db.vers.Encode(e)
	db.mu.RUnlock()

	db2 := openDB(t, filepath.Join(t.TempDir(), "db2"), Options{Schema: Figure3Schema(), Clock: fixedClock()})
	defer db2.Close()
	if err := db2.loadSnapshot(e.Bytes()); err != nil {
		t.Fatalf("format-1 snapshot load: %v", err)
	}
	v := db2.View()
	if id, ok := v.ObjectByName("Alarms"); !ok || id != alarms {
		t.Fatalf("Alarms after v1 load = %d %v", id, ok)
	}
	if o, ok := v.Object(sel); !ok || o.Value.Str() != "Representation" {
		t.Errorf("Selector after v1 load = %v %v", o.Value, ok)
	}
	if r, ok := v.Relationship(acc); !ok || r.Assoc.Name() != "Access" {
		t.Errorf("Access after v1 load: %v", ok)
	}
	if names := db2.Versions(); len(names) == 0 {
		t.Error("version tree lost in v1 load")
	}
}
