package seed

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Tests for the concurrent transaction handles (BeginTx): disjoint staging
// from several goroutines, atomic visibility, conflict surfacing, and the
// whole-database barrier operations rejecting open transactions.

func TestTxHandlesConcurrentDisjointCommits(t *testing.T) {
	db := memDB(t, Figure3Schema())
	const writers = 4
	const rounds = 25
	roots := make([]ID, writers)
	descs := make([]ID, writers)
	for i := range roots {
		r, err := db.CreateObject("Data", fmt.Sprintf("Obj%d", i))
		if err != nil {
			t.Fatal(err)
		}
		d, err := db.CreateValueObject(r, "Description", NewString("r-1"))
		if err != nil {
			t.Fatal(err)
		}
		roots[i], descs[i] = r, d
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tx, err := db.BeginTx()
				if err != nil {
					errCh <- err
					return
				}
				if err := tx.SetValue(descs[w], NewString(fmt.Sprintf("r%d", r))); err != nil {
					errCh <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					_ = tx.Rollback()
					return
				}
				if _, err := tx.CreateValueObject(roots[w], "Text", NewString("t")); err == nil {
					// Text is a structured class in figure 3; a value there
					// must fail — and the failed operation must not poison
					// the rest of the batch.
					errCh <- fmt.Errorf("writer %d: value on structured Text accepted", w)
					_ = tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- fmt.Errorf("writer %d round %d commit: %w", w, r, err)
					return
				}
			}
			errCh <- nil
		}(w)
	}
	// A reader thrashing views concurrently: every snapshot must hold a
	// well-formed value for every description (never a half state).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			v := db.View()
			for w := 0; w < writers; w++ {
				o, ok := v.Object(descs[w])
				if !ok || o.Value.Str() == "" {
					errCh <- fmt.Errorf("reader: torn description for writer %d", w)
					return
				}
			}
		}
		errCh <- nil
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < writers; w++ {
		o, _ := db.View().Object(descs[w])
		if o.Value.Str() != fmt.Sprintf("r%d", rounds-1) {
			t.Errorf("writer %d final value %q", w, o.Value.Str())
		}
	}
}

func TestTxConflictSurfacesAndRetries(t *testing.T) {
	db := memDB(t, Figure3Schema())
	r, _ := db.CreateObject("Data", "Shared")
	d, err := db.CreateValueObject(r, "Description", NewString("base"))
	if err != nil {
		t.Fatal(err)
	}

	tx1, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.SetValue(d, NewString("one")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetValue(d, NewString("two")); !errors.Is(err, ErrTxConflict) {
		t.Fatalf("overlap: got %v, want ErrTxConflict", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Retry after the conflict: a fresh transaction sees the committed
	// value and succeeds.
	tx3, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.SetValue(d, NewString("two")); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	o, _ := db.View().Object(d)
	if o.Value.Str() != "two" {
		t.Errorf("final value %q, want %q", o.Value.Str(), "two")
	}
	// Finished handles reject further staging.
	if err := tx3.SetValue(d, NewString("late")); !errors.Is(err, ErrTxDone) {
		t.Errorf("staging on finished tx: got %v, want ErrTxDone", err)
	}
}

func TestBarrierOpsRejectOpenTx(t *testing.T) {
	db := memDB(t, Figure3Schema())
	if _, err := db.CreateObject("Data", "A"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("mid-tx"); !errors.Is(err, ErrTxOpen) {
		t.Errorf("SaveVersion mid-tx: got %v, want ErrTxOpen", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrTxOpen) {
		t.Errorf("Compact mid-tx: got %v, want ErrTxOpen", err)
	}
	if err := db.EvolveSchema(func(s *Schema) error { return nil }); !errors.Is(err, ErrTxOpen) {
		t.Errorf("EvolveSchema mid-tx: got %v, want ErrTxOpen", err)
	}
	if _, err := db.Vacuum(); !errors.Is(err, ErrTxOpen) {
		t.Errorf("Vacuum mid-tx: got %v, want ErrTxOpen", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveVersion("after"); err != nil {
		t.Errorf("SaveVersion after commit: %v", err)
	}
}

// TestTxConcurrentDurableCommits drives file-backed group-committed
// transactions from several goroutines and proves by reopen that every
// acked batch survives whole.
func TestTxConcurrentDurableCommits(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Schema: Figure3Schema(), SyncPolicy: SyncGroupCommit})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const rounds = 10
	descs := make([]ID, writers)
	for i := range descs {
		r, err := db.CreateObject("Data", fmt.Sprintf("Obj%d", i))
		if err != nil {
			t.Fatal(err)
		}
		d, err := db.CreateValueObject(r, "Description", NewString("init"))
		if err != nil {
			t.Fatal(err)
		}
		descs[i] = d
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tx, err := db.BeginTx()
				if err != nil {
					errCh <- err
					return
				}
				// Two records per batch: exercises the begin/end framing
				// under concurrent group commit.
				sub, err := tx.CreateSubObject(descs[w], "")
				if err == nil {
					_ = sub // Description is a leaf; creation must fail
					errCh <- fmt.Errorf("sub-object under leaf accepted")
					return
				}
				if err := tx.SetValue(descs[w], NewString(fmt.Sprintf("w%d-r%d", w, r))); err != nil {
					errCh <- err
					return
				}
				if _, err := tx.CreateObject("Action", fmt.Sprintf("Act%dx%d", w, r)); err != nil {
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	v := re.View()
	for w := 0; w < writers; w++ {
		o, ok := v.Object(descs[w])
		if !ok || o.Value.Str() != fmt.Sprintf("w%d-r%d", w, rounds-1) {
			t.Errorf("writer %d replayed value %q", w, o.Value.Str())
		}
		for r := 0; r < rounds; r++ {
			if _, ok := v.ObjectByName(fmt.Sprintf("Act%dx%d", w, r)); !ok {
				t.Errorf("acked object Act%dx%d lost on replay", w, r)
			}
		}
	}
}
