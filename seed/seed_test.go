package seed

import (
	"errors"
	"testing"
	"time"
)

func memDB(t *testing.T, sch *Schema) *Database {
	t.Helper()
	db, err := NewMemory(sch)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func create(t *testing.T, db *Database, class, name string) ID {
	t.Helper()
	id, err := db.CreateObject(class, name)
	if err != nil {
		t.Fatalf("CreateObject(%s, %s): %v", class, name, err)
	}
	return id
}

func TestQuickstartFlow(t *testing.T) {
	db := memDB(t, Figure2Schema())
	alarms := create(t, db, "Data", "Alarms")
	handler := create(t, db, "Action", "AlarmHandler")
	if _, err := db.CreateRelationship("Read", map[string]ID{"from": alarms, "by": handler}); err != nil {
		t.Fatal(err)
	}
	text, err := db.CreateSubObject(alarms, "Text")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateValueObject(text, "Selector", NewString("Representation")); err != nil {
		t.Fatal(err)
	}
	id, err := db.ResolvePath("Alarms.Text[0].Selector")
	if err != nil {
		t.Fatal(err)
	}
	o, _ := db.View().Object(id)
	if o.Value.Str() != "Representation" {
		t.Errorf("Selector value = %q", o.Value)
	}
	if p, ok := db.PathOf(id); !ok || p.String() != "Alarms.Text[0].Selector" {
		t.Errorf("PathOf = %v %v", p, ok)
	}
	if _, ok := db.GetObject("Alarms"); !ok {
		t.Error("GetObject failed")
	}
}

// TestFigure4Versions reproduces the version scenario of figures 4a-4c
// (experiment E3): AlarmHandler with Revised/Description over versions 1.0
// and 2.0 plus a current state; the views to 1.0 and Current must show the
// states of figures 4c and 4b.
func TestFigure4Versions(t *testing.T) {
	db := memDB(t, Figure3Schema())

	// Version 1.0 state: AlarmHandler "Handles alarms", revised 1.0-times.
	handler := create(t, db, "Action", "AlarmHandler")
	desc, err := db.CreateValueObject(handler, "Description", NewString("Handles alarms"))
	if err != nil {
		t.Fatal(err)
	}
	rev, err := db.CreateValueObject(handler, "Revised", NewDate(time.Date(1985, 6, 1, 0, 0, 0, 0, time.UTC)))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := db.SaveVersion("first release")
	if err != nil {
		t.Fatal(err)
	}
	if v1.String() != "1.0" {
		t.Fatalf("first version = %s", v1)
	}

	// Version 2.0: the description is refined.
	if err := db.SetValue(desc, NewString("Handles alarms derived from ProcessData")); err != nil {
		t.Fatal(err)
	}
	v2, err := db.SaveVersion("refined description")
	if err != nil {
		t.Fatal(err)
	}
	if v2.String() != "2.0" {
		t.Fatalf("second version = %s", v2)
	}
	// Delta storage: version 2.0 stores only the changed item.
	infos := db.Versions()
	if len(infos) != 2 {
		t.Fatalf("versions = %d", len(infos))
	}
	if infos[1].DeltaSize != 1 {
		t.Errorf("2.0 delta = %d items, want 1 (only the description changed)", infos[1].DeltaSize)
	}
	if infos[0].DeltaSize != 3 {
		t.Errorf("1.0 delta = %d items, want 3", infos[0].DeltaSize)
	}

	// Current: the description is refined again (figure 4b).
	if err := db.SetValue(desc, NewString("Generates alarms from process data, triggers Operator Alert")); err != nil {
		t.Fatal(err)
	}

	// View to 1.0 (figure 4c).
	view1, err := db.VersionView(v1)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := view1.Object(desc)
	if !ok || o.Value.Str() != "Handles alarms" {
		t.Errorf("1.0 description = %q, %v", o.Value, ok)
	}
	// View to 2.0: inherited unchanged items resolve through the path.
	view2, err := db.VersionView(v2)
	if err != nil {
		t.Fatal(err)
	}
	if o, ok := view2.Object(desc); !ok || o.Value.Str() != "Handles alarms derived from ProcessData" {
		t.Errorf("2.0 description = %q, %v", o.Value, ok)
	}
	if _, ok := view2.Object(rev); !ok {
		t.Error("2.0 view lost the unchanged Revised object")
	}
	if _, ok := view2.ObjectByName("AlarmHandler"); !ok {
		t.Error("2.0 view lost the handler by name")
	}
	// The current state shows the newest value.
	if o, _ := db.View().Object(desc); o.Value.Str() != "Generates alarms from process data, triggers Operator Alert" {
		t.Errorf("current description = %q", o.Value)
	}

	// History retrieval: all versions of the description.
	hist := db.HistoryOf(desc, nil)
	if len(hist) != 2 {
		t.Errorf("history of desc = %d versions", len(hist))
	}
	// "beginning with version 2.0".
	hist2 := db.HistoryOf(desc, MustVersion("2.0"))
	if len(hist2) != 1 || hist2[0].Num.String() != "2.0" {
		t.Errorf("history from 2.0 = %v", hist2)
	}
}

// MustVersion parses a version number for tests.
func MustVersion(s string) VersionNumber {
	v, err := ParseVersion(s)
	if err != nil {
		panic(err)
	}
	return v
}

func TestAlternatives(t *testing.T) {
	db := memDB(t, Figure3Schema())
	handler := create(t, db, "Action", "AlarmHandler")
	desc, _ := db.CreateValueObject(handler, "Description", NewString("v1"))
	v1, err := db.SaveVersion("base")
	if err != nil {
		t.Fatal(err)
	}
	_ = db.SetValue(desc, NewString("v2"))
	if _, err := db.SaveVersion("trunk"); err != nil {
		t.Fatal(err)
	}

	// Unsaved changes block selection.
	_ = db.SetValue(desc, NewString("scratch"))
	if err := db.SelectVersion(v1); !errors.Is(err, ErrUnsavedChanges) {
		t.Fatalf("SelectVersion with dirty state: %v", err)
	}
	if err := db.SelectVersionDiscard(v1); err != nil {
		t.Fatal(err)
	}
	// The current state is now version 1.0's.
	if o, _ := db.View().Object(desc); o.Value.Str() != "v1" {
		t.Errorf("state after select = %q", o.Value)
	}
	// Work on the alternative and save: branch number.
	_ = db.SetValue(desc, NewString("alt"))
	alt, err := db.SaveVersion("alternative")
	if err != nil {
		t.Fatal(err)
	}
	if alt.String() != "1.0.1.0" {
		t.Errorf("alternative number = %s, want 1.0.1.0", alt)
	}
	// Continue on the alternative line.
	_ = db.SetValue(desc, NewString("alt2"))
	alt2, err := db.SaveVersion("alternative 2")
	if err != nil {
		t.Fatal(err)
	}
	if alt2.String() != "1.0.1.1" {
		t.Errorf("alternative successor = %s, want 1.0.1.1", alt2)
	}
	// A second alternative off 1.0.
	if err := db.SelectVersion(v1); err != nil {
		t.Fatal(err)
	}
	_ = db.SetValue(desc, NewString("alt-b"))
	altB, err := db.SaveVersion("alternative b")
	if err != nil {
		t.Fatal(err)
	}
	if altB.String() != "1.0.2.0" {
		t.Errorf("second alternative = %s, want 1.0.2.0", altB)
	}
	// The original trunk version is still intact.
	view2, err := db.VersionView(MustVersion("2.0"))
	if err != nil {
		t.Fatal(err)
	}
	if o, _ := view2.Object(desc); o.Value.Str() != "v2" {
		t.Errorf("trunk 2.0 after branching = %q", o.Value)
	}
	// Items created after a select never collide with frozen items; new
	// creations on the alternative keep working.
	if _, err := db.CreateObject("Action", "NewOnBranch"); err != nil {
		t.Fatal(err)
	}
}

func TestVersionDeletion(t *testing.T) {
	db := memDB(t, Figure3Schema())
	create(t, db, "Action", "A")
	v1, _ := db.SaveVersion("1")
	_, _ = db.CreateObject("Action", "B")
	v2, _ := db.SaveVersion("2")
	// 1.0 has a successor: not deletable.
	if err := db.DeleteVersion(v1); err == nil {
		t.Error("deleting non-leaf version succeeded")
	}
	// 2.0 is the current base: not deletable.
	if err := db.DeleteVersion(v2); err == nil {
		t.Error("deleting base version succeeded")
	}
	// After moving back to 1.0... 2.0 becomes deletable.
	if err := db.SelectVersion(v1); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteVersion(v2); err != nil {
		t.Errorf("deleting leaf version: %v", err)
	}
	if len(db.Versions()) != 1 {
		t.Errorf("versions after delete = %d", len(db.Versions()))
	}
}

func TestDeletionAcrossVersions(t *testing.T) {
	db := memDB(t, Figure3Schema())
	a := create(t, db, "Action", "Doomed")
	v1, _ := db.SaveVersion("with object")
	if err := db.Delete(a); err != nil {
		t.Fatal(err)
	}
	v2, _ := db.SaveVersion("without object")
	// Current and 2.0 views hide it; 1.0 still shows it.
	if _, ok := db.View().ObjectByName("Doomed"); ok {
		t.Error("deleted object visible in current")
	}
	view2, _ := db.VersionView(v2)
	if _, ok := view2.ObjectByName("Doomed"); ok {
		t.Error("deleted object visible in 2.0")
	}
	view1, _ := db.VersionView(v1)
	if _, ok := view1.ObjectByName("Doomed"); !ok {
		t.Error("object missing from 1.0")
	}
	// Selecting 1.0 resurrects it in the working state.
	if err := db.SelectVersion(v1); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.View().ObjectByName("Doomed"); !ok {
		t.Error("object not restored by selecting 1.0")
	}
}

// TestFigure5Variants reproduces the variants construction of figure 5
// (experiment E4): a common part connected to pattern objects PO1/PO2 via
// pattern relationships PR1/PR2; two variants inherit both patterns and
// thereby share the same relationships to the common part.
func TestFigure5Variants(t *testing.T) {
	db := memDB(t, Figure3Schema())

	common := create(t, db, "Data", "CommonPart")
	po1, err := db.CreatePatternObject("Action", "PO1")
	if err != nil {
		t.Fatal(err)
	}
	po2, err := db.CreatePatternObject("Action", "PO2")
	if err != nil {
		t.Fatal(err)
	}
	// PR1/PR2: relationships to a pattern become pattern relationships.
	pr1, err := db.CreateRelationship("Access", map[string]ID{"from": common, "by": po1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelationship("Access", map[string]ID{"from": common, "by": po2}); err != nil {
		t.Fatal(err)
	}

	// Patterns are invisible to retrieval.
	if _, ok := db.View().ObjectByName("PO1"); ok {
		t.Error("pattern visible by name")
	}
	if _, ok := db.View().Relationship(pr1); ok {
		t.Error("pattern relationship visible")
	}
	if len(db.View().RelationshipsOf(common)) != 0 {
		t.Error("common part shows pattern relationships without inheritors")
	}

	fam := db.NewVariantFamily(po1, po2)
	varA, err := fam.AddVariant("Action", "VariantA")
	if err != nil {
		t.Fatal(err)
	}
	varB, err := fam.AddVariant("Action", "VariantB")
	if err != nil {
		t.Fatal(err)
	}

	// Both variants now have (virtual) relationships to the common part.
	v := db.View()
	relsA := v.RelationshipsOf(varA)
	relsB := v.RelationshipsOf(varB)
	if len(relsA) != 2 || len(relsB) != 2 {
		t.Fatalf("variant relationships: A=%d B=%d, want 2 each", len(relsA), len(relsB))
	}
	// The common part sees four inherited relationships (two per variant).
	if got := len(v.RelationshipsOf(common)); got != 4 {
		t.Errorf("common part relationships = %d, want 4", got)
	}
	// Virtual relationships resolve and point at the inheritor.
	r, ok := v.Relationship(relsA[0])
	if !ok {
		t.Fatal("virtual relationship does not resolve")
	}
	if r.End("by") != varA || r.End("from") != common {
		t.Errorf("virtual ends = %+v", r.Ends)
	}
	// Provenance is reported.
	if _, patRoot, inh, ok := db.Origin(relsA[0]); !ok || (patRoot != po1 && patRoot != po2) || inh != varA {
		t.Errorf("Origin = %v %v %v", patRoot, inh, ok)
	}

	// Inherited information cannot be updated in the inheritor context.
	if err := db.Delete(relsA[0]); !errors.Is(err, ErrInheritedData) {
		t.Errorf("delete of inherited item: %v", err)
	}

	// Updating the pattern propagates to all inheritors: add a sub-object
	// to PO1's context via... PO1 has no children; instead give PO1 a
	// Description — every variant then shows it.
	if _, err := db.CreateValueObject(po1, "Description", NewString("shared doc")); err != nil {
		t.Fatal(err)
	}
	v = db.View()
	foundA, foundB := false, false
	for _, ch := range v.Children(varA, "Description") {
		if o, ok := v.Object(ch); ok && o.Value.Str() == "shared doc" {
			foundA = true
		}
	}
	for _, ch := range v.Children(varB, "Description") {
		if o, ok := v.Object(ch); ok && o.Value.Str() == "shared doc" {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Errorf("pattern update did not propagate: A=%v B=%v", foundA, foundB)
	}

	// Disinherit: variant B leaves the family partially.
	if err := db.Disinherit(po2, varB); err != nil {
		t.Fatal(err)
	}
	if got := len(db.View().RelationshipsOf(varB)); got != 1 {
		t.Errorf("variant B relationships after disinherit = %d, want 1", got)
	}
	// Deleting a pattern with inheritors is rejected.
	if err := db.Delete(po1); err == nil {
		t.Error("deleting inherited pattern succeeded")
	}
	// InheritorsOf / PatternsOf bookkeeping.
	if got := db.InheritorsOf(po1); len(got) != 2 {
		t.Errorf("InheritorsOf(po1) = %v", got)
	}
	if got := db.PatternsOf(varB); len(got) != 1 || got[0] != po1 {
		t.Errorf("PatternsOf(varB) = %v", got)
	}
}

func TestPatternConsistencyOnInherit(t *testing.T) {
	db := memDB(t, Figure3Schema())
	// A pattern carrying a Revised date (1..1).
	pat, _ := db.CreatePatternObject("Data", "PatternWithRevised")
	if _, err := db.CreateValueObject(pat, "Revised", NewDate(time.Date(1986, 1, 1, 0, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}
	// An inheritor that already has its own Revised: inheriting would
	// exceed the 1..1 maximum, so Inherit is rejected.
	obj := create(t, db, "Data", "HasOwnRevised")
	if _, err := db.CreateValueObject(obj, "Revised", NewDate(time.Date(1986, 2, 2, 0, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Inherit(pat, obj); err == nil {
		t.Fatal("inheriting into over-full context succeeded")
	}
	// A fresh inheritor works — and then adding its own Revised is
	// rejected, because the inherited one already fills the maximum.
	obj2 := create(t, db, "Data", "Fresh")
	if _, err := db.Inherit(pat, obj2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateValueObject(obj2, "Revised", NewDate(time.Date(1986, 3, 3, 0, 0, 0, 0, time.UTC))); err == nil {
		t.Error("own Revised next to inherited one accepted")
	}
	// Updating the pattern in a way that would break an inheritor is
	// rejected: a second Revised on the pattern (patterns alone are not
	// checked, but the inheritor context is).
	if _, err := db.CreateValueObject(pat, "Revised", NewDate(time.Date(1986, 4, 4, 0, 0, 0, 0, time.UTC))); err == nil {
		t.Error("pattern update breaking inheritor accepted")
	}
	// Class conformance: inheriting a Data pattern into an Action fails.
	act := create(t, db, "Action", "Act")
	if _, err := db.Inherit(pat, act); err == nil {
		t.Error("cross-class inheritance accepted")
	}
}

func TestCompletenessReport(t *testing.T) {
	db := memDB(t, Figure3Schema())
	thing := create(t, db, "Thing", "Vague")
	fs := db.Completeness()
	rules := map[Rule]bool{}
	for _, f := range fs {
		if f.Item == thing {
			rules[f.Rule] = true
		}
	}
	if !rules[RuleCovering] {
		t.Error("covering finding missing for Thing instance")
	}
	if !rules[RuleMinChildren] {
		t.Error("min-children finding missing (Revised 1..1)")
	}
	// An undefined value is reported.
	rev, _ := db.CreateSubObject(thing, "Revised")
	found := false
	for _, f := range db.CompletenessOf(rev) {
		if f.Rule == RuleUndefinedValue {
			found = true
		}
	}
	if !found {
		t.Error("undefined-value finding missing")
	}
	_ = db.SetValue(rev, NewDate(time.Date(1986, 1, 1, 0, 0, 0, 0, time.UTC)))
	for _, f := range db.CompletenessOf(rev) {
		t.Errorf("unexpected finding after set: %v", f)
	}
}

func TestSchemaEvolution(t *testing.T) {
	db := memDB(t, Figure3Schema())
	alarms := create(t, db, "Data", "Alarms")
	if _, err := db.SaveVersion("before evolution"); err != nil {
		t.Fatal(err)
	}

	// Add a new class and a new sub-class.
	err := db.EvolveSchema(func(s *Schema) error {
		c, err := s.AddClass("Module")
		if err != nil {
			return err
		}
		if _, err := c.AddChild("Language", AtMostOne, KindString); err != nil {
			return err
		}
		thing, err := s.Class("Thing")
		if err != nil {
			return err
		}
		_, err = thing.AddChild("Author", AtMostOne, KindString)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.SchemaVersion() != 2 {
		t.Fatalf("schema version = %d", db.SchemaVersion())
	}
	// New categories usable immediately, existing data intact.
	mod := create(t, db, "Module", "Kernel")
	if _, err := db.CreateValueObject(mod, "Language", NewString("Go")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateValueObject(alarms, "Author", NewString("glinz")); err != nil {
		t.Fatal(err)
	}
	v2, err := db.SaveVersion("after evolution")
	if err != nil {
		t.Fatal(err)
	}

	// Old versions are interpreted under their old schema.
	infos := db.Versions()
	if infos[0].SchemaVersion != 1 || infos[1].SchemaVersion != 2 {
		t.Errorf("schema versions = %d, %d", infos[0].SchemaVersion, infos[1].SchemaVersion)
	}
	view1, err := db.VersionView(infos[0].Num)
	if err != nil {
		t.Fatal(err)
	}
	if view1.Schema().Version() != 1 {
		t.Errorf("1.0 view schema = %d", view1.Schema().Version())
	}
	view2, err := db.VersionView(v2)
	if err != nil {
		t.Fatal(err)
	}
	if view2.Schema().Version() != 2 {
		t.Errorf("2.0 view schema = %d", view2.Schema().Version())
	}

	// An evolution that would orphan existing data is rejected and rolled
	// back: adding a 0..0 cardinality class is fine, but we test via a
	// conflicting edit error.
	err = db.EvolveSchema(func(s *Schema) error {
		_, err := s.AddClass("Module") // duplicate
		return err
	})
	if err == nil {
		t.Error("bad evolution accepted")
	}
	if db.SchemaVersion() != 2 {
		t.Errorf("schema version after failed evolution = %d", db.SchemaVersion())
	}
	// The engine still works.
	if _, err := db.CreateObject("Module", "M2"); err != nil {
		t.Error(err)
	}
}

func TestTransactionsThroughFacade(t *testing.T) {
	db := memDB(t, Figure2Schema())
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	create(t, db, "Data", "A")
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GetObject("A"); ok {
		t.Error("rolled-back object visible")
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	create(t, db, "Data", "B")
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GetObject("B"); !ok {
		t.Error("committed object missing")
	}
}

func TestClosedDatabase(t *testing.T) {
	db := memDB(t, Figure2Schema())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateObject("Data", "X"); !errors.Is(err, ErrClosed) {
		t.Errorf("create on closed: %v", err)
	}
	if _, err := db.SaveVersion("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("save on closed: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
