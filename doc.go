// Package repro is a from-scratch Go reproduction of SEED, the database
// system for software engineering applications based on the
// entity-relationship approach (Glinz & Ludewig, ICDE 1986).
//
// The public API lives in the seed package; DESIGN.md maps every subsystem
// and experiment, EXPERIMENTS.md records the reproduced evaluation
// artifacts, and bench_test.go regenerates one benchmark group per paper
// figure.
package repro
